//! The serving engine: cache → route → scatter → gather under a swappable placement.
//!
//! [`ServingEngine`] owns one [`EpochSwap`] cell holding the current [`Generation`] — an
//! immutable pair of placement snapshot and the shard set built from it. Every multiget loads
//! the generation once and serves entirely against it, so a concurrent
//! [`ServingEngine::install_partition`] (which builds the next generation's shards **off to
//! the side** and then swaps one pointer) can never make a query observe half-moved data:
//! there is no serving gap and no torn read, the exact property the live-repartition
//! requirement of Section 5 demands from a production tier.

use crate::cache::HotKeyCache;
use crate::error::{Result, ServingError};
use crate::metrics::{ServingMetrics, ServingReport};
use crate::partition_map::{EpochSwap, PartitionDelta, PartitionSnapshot};
use crate::router::ShardRouter;
use crate::store::ShardSet;
use crate::workload::WorkloadEvent;
use shp_faults::FaultInjector;
use shp_hypergraph::{BipartiteGraph, DataId, Partition};
use shp_sharding_sim::LatencyModel;
use shp_telemetry::{HistogramSnapshot, Snapshot, Span, Timer, TopKSketch};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slots in the per-engine hot-key access sketch (bounds its memory at 32 KiB).
const HOT_KEY_SLOTS: usize = 4096;

/// How many of the hottest keys [`ServingEngine::telemetry_snapshot`] exports.
const HOT_KEYS_EXPORTED: usize = 32;

/// A sink for the deduplicated key-set of every served multiget — the observation tap of the
/// serve→observe→repartition loop.
///
/// Implementations are called on the serving hot path with the query's *distinct, sorted*
/// keys, so they must be lock-free (or very close), bounded in memory, and must not allocate
/// per call — exactly the contract `shp-controller`'s `AccessTraceCollector` satisfies. The
/// observer sees every query regardless of whether global telemetry is enabled.
pub trait AccessObserver: Send + Sync + std::fmt::Debug {
    /// Records one multiget's distinct key-set.
    fn observe(&self, keys: &[DataId]);
}

/// Configuration of a [`ServingEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Per-request service-time model shared by all shards.
    pub latency_model: LatencyModel,
    /// Capacity of the hot-key result cache (0 disables caching).
    pub cache_capacity: usize,
    /// Latency (in units of the model's `t`) of a multiget answered entirely from the cache.
    pub cache_hit_latency: f64,
    /// Seed for the per-shard latency RNG streams.
    pub seed: u64,
    /// Replica-group size: every shard additionally stores the records of the `replication-1`
    /// primaries chained before it, giving each batch that many failover candidates. 1 (the
    /// default) disables replication and is bit-identical to the pre-replication engine.
    pub replication: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            latency_model: LatencyModel::default(),
            cache_capacity: 0,
            cache_hit_latency: 0.05,
            seed: 0x5047,
            replication: 1,
        }
    }
}

/// One immutable serving generation: the placement and the shards built from it.
#[derive(Debug)]
pub struct Generation {
    /// Placement of every key.
    pub snapshot: PartitionSnapshot,
    /// Shard contents matching the placement exactly.
    pub shards: ShardSet,
}

/// The answer to one multiget.
#[derive(Debug, Clone, PartialEq)]
pub struct MultigetResult {
    /// `(key, value)` for every distinct requested key, in ascending key order.
    pub values: Vec<(DataId, u64)>,
    /// Number of shards contacted (0 when the cache answered everything).
    pub fanout: u32,
    /// Simulated latency in units of the latency model's `t`.
    pub latency: f64,
    /// Placement epoch the query was served under.
    pub epoch: u64,
    /// Number of keys answered from the hot-key cache.
    pub cache_hits: usize,
    /// Requested keys that were unreachable on every replica of their failover chain,
    /// ascending. Always empty without an attached fault injector: a degraded multiget is a
    /// typed partial result, never a panic or a silently wrong value.
    pub missing_keys: Vec<DataId>,
    /// Failover retries the query performed.
    pub retries: u64,
    /// Hedged duplicate requests that beat the attempt they shadowed.
    pub hedges_won: u64,
}

impl MultigetResult {
    /// Whether the multiget came back partial (some keys unreachable on every replica).
    pub fn is_degraded(&self) -> bool {
        !self.missing_keys.is_empty()
    }

    /// Converts a degraded result into [`ServingError::DegradedService`], passing a complete
    /// result through — for callers that treat partial service as an error.
    ///
    /// # Errors
    /// Returns [`ServingError::DegradedService`] when any requested key was unreachable.
    pub fn require_complete(self) -> Result<Self> {
        if self.missing_keys.is_empty() {
            Ok(self)
        } else {
            Err(ServingError::DegradedService {
                missing: self.missing_keys.len(),
            })
        }
    }
}

/// A partition-aware multiget serving engine with live repartition swap.
#[derive(Debug)]
pub struct ServingEngine {
    generation: EpochSwap<Generation>,
    router: ShardRouter,
    cache: HotKeyCache,
    metrics: ServingMetrics,
    config: EngineConfig,
    num_keys: usize,
    next_epoch: AtomicU64,
    install_lock: std::sync::Mutex<()>,
    /// Bounded per-key access-frequency sketch — the observation feed of the paper's
    /// serve→observe→repartition loop. Only written when telemetry is enabled.
    tracer: TopKSketch,
    /// Pre-resolved span timers for the per-multiget hot path (`serving/route`,
    /// `serving/shard_service`): resolved once here, recorded lock-free per query.
    route_timer: Timer,
    service_timer: Timer,
    /// Optional access-trace sink, fed every multiget's distinct key-set (set at build time
    /// via [`ServingEngine::with_access_observer`], before the engine is shared).
    observer: Option<Arc<dyn AccessObserver>>,
    /// Optional deterministic fault injector driving the failover execution paths (set at
    /// build time via [`ServingEngine::with_fault_injector`]). `None` — the default — takes
    /// the plain execution paths untouched.
    faults: Option<Arc<FaultInjector>>,
}

impl ServingEngine {
    /// Boots the engine on an initial partition (epoch 0), building and loading every shard.
    ///
    /// # Errors
    /// Returns [`ServingError::EmptyPartition`] for a partition with no buckets.
    pub fn new(partition: &Partition, config: EngineConfig) -> Result<Self> {
        let snapshot = PartitionSnapshot::from_partition(partition, 0)?;
        let shards = ShardSet::build_replicated(
            &snapshot,
            config.latency_model.clone(),
            config.seed,
            config.replication,
        );
        let num_keys = snapshot.num_keys();
        Ok(ServingEngine {
            generation: EpochSwap::new(Generation { snapshot, shards }),
            router: ShardRouter::new(),
            cache: HotKeyCache::new(config.cache_capacity),
            metrics: ServingMetrics::new(),
            config,
            num_keys,
            next_epoch: AtomicU64::new(1),
            install_lock: std::sync::Mutex::new(()),
            tracer: TopKSketch::new(HOT_KEY_SLOTS),
            route_timer: shp_telemetry::global().timer("serving/route"),
            service_timer: shp_telemetry::global().timer("serving/shard_service"),
            observer: None,
            faults: None,
        })
    }

    /// Attaches an [`AccessObserver`] that is fed every multiget's distinct key-set. Builder
    /// style: call before the engine is shared across threads.
    pub fn with_access_observer(mut self, observer: Arc<dyn AccessObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a deterministic [`FaultInjector`]: every multiget advances its query clock
    /// one tick and serves through the failover paths. With an empty
    /// [`FaultPlan`](shp_faults::FaultPlan) results are bit-identical to an engine without an
    /// injector. Builder style: call before the engine is shared across threads.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.faults = Some(injector);
        self
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Number of keys in the engine's key universe.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// The currently installed placement epoch.
    pub fn current_epoch(&self) -> u64 {
        self.generation.load().snapshot.epoch()
    }

    /// Number of shards of the current generation.
    pub fn num_shards(&self) -> u32 {
        self.generation.load().shards.num_shards()
    }

    /// Serves one multiget. Duplicate keys are answered once; values come back in ascending
    /// key order with their verified records.
    ///
    /// # Errors
    /// Returns [`ServingError::KeyOutOfRange`] when a key is outside the key universe.
    pub fn multiget(&self, keys: &[DataId]) -> Result<MultigetResult> {
        self.multiget_impl(keys, false)
    }

    /// Like [`ServingEngine::multiget`] but scattering the per-shard batches over real scoped
    /// threads — the literal parallel fan-out a storage tier performs. Prefer `multiget` for
    /// throughput runs (concurrency across queries amortizes better than per-query spawns).
    ///
    /// # Errors
    /// Same contract as [`ServingEngine::multiget`].
    pub fn multiget_scatter_gather(&self, keys: &[DataId]) -> Result<MultigetResult> {
        self.multiget_impl(keys, true)
    }

    fn multiget_impl(&self, keys: &[DataId], scatter: bool) -> Result<MultigetResult> {
        let generation = self.generation.load();
        let epoch = generation.snapshot.epoch();

        // Deduplicate up front: both the cache split and the router operate on distinct keys.
        let mut distinct: Vec<DataId> = keys.to_vec();
        distinct.sort_unstable();
        distinct.dedup();

        // Access tracing feeds the hot-key sketch; never read back on the serving path, so
        // results are identical with telemetry on or off.
        if shp_telemetry::enabled() {
            for &key in &distinct {
                self.tracer.record(key);
            }
        }

        // The attached observer (repartition controller's trace collector) sees every query's
        // distinct key-set; its contract forbids allocation and blocking.
        if let Some(observer) = &self.observer {
            observer.observe(&distinct);
        }

        // Split into cache hits and misses.
        let mut values: Vec<(DataId, u64)> = Vec::with_capacity(distinct.len());
        let mut misses: Vec<DataId> = Vec::with_capacity(distinct.len());
        if self.config.cache_capacity > 0 {
            for &key in &distinct {
                if key as usize >= self.num_keys {
                    return Err(ServingError::KeyOutOfRange {
                        key,
                        num_keys: self.num_keys,
                    });
                }
                match self.cache.get(key) {
                    Some(value) => values.push((key, value)),
                    None => misses.push(key),
                }
            }
        } else {
            misses = distinct.clone();
        }
        let cache_hits = values.len();

        // Route the misses and execute one batch per contacted shard. The cache-hit floor
        // only applies when the cache actually answered something; a cache-less multiget's
        // latency is purely what the shards charge.
        let plan = {
            let _route = self.route_timer.start();
            self.router.route(&generation.snapshot, &misses)?
        };
        let fanout = plan.fanout();
        let mut latency = if cache_hits > 0 {
            self.config.cache_hit_latency * self.config.latency_model.mean_t
        } else {
            0.0
        };
        let mut missing_keys: Vec<DataId> = Vec::new();
        let mut retries = 0u64;
        let mut hedges_won = 0u64;
        if !plan.batches.is_empty() {
            let _service = self.service_timer.start();
            let faults = self.faults.as_deref();
            let fetched = if scatter {
                generation
                    .shards
                    .execute_scatter_gather_with_faults(&plan, faults)?
            } else {
                generation.shards.execute_with_faults(&plan, faults)?
            };
            latency = latency.max(fetched.latency);
            if self.config.cache_capacity > 0 {
                for &(key, value) in &fetched.values {
                    self.cache.insert(key, value);
                }
            }
            values.extend(fetched.values);
            missing_keys = fetched.missing;
            retries = fetched.retries;
            hedges_won = fetched.hedges_won;
        }
        values.sort_unstable_by_key(|&(key, _)| key);

        self.metrics.record(
            fanout,
            generation.snapshot.num_shards(),
            plan.batches.iter().map(|b| b.shard),
            latency,
            epoch,
        );
        if !missing_keys.is_empty() || retries > 0 || hedges_won > 0 {
            self.metrics
                .record_faults(missing_keys.len() as u64, retries, hedges_won);
        }
        Ok(MultigetResult {
            values,
            fanout,
            latency,
            epoch,
            cache_hits,
            missing_keys,
            retries,
            hedges_won,
        })
    }

    /// Installs a new partition under live traffic.
    ///
    /// The next generation — snapshot *and* fully populated shards — is built here, off the
    /// serving path, and then published with one atomic pointer swap. Queries in flight finish
    /// on the generation they loaded; queries arriving after the swap see the new placement.
    /// Returns the epoch of the installed placement.
    ///
    /// # Errors
    /// Rejects partitions that do not cover the engine's key universe exactly.
    pub fn install_partition(&self, partition: &Partition) -> Result<u64> {
        if partition.num_data() != self.num_keys {
            return Err(ServingError::PartitionMismatch {
                got: partition.num_data(),
                expected: self.num_keys,
            });
        }
        // Serialize concurrent installs: epoch allocation and publication must happen in the
        // same order, otherwise a slower build with a smaller epoch could be published last
        // and the engine would serve an older placement than the last returned epoch.
        // Readers are unaffected — they never take this lock.
        let _install = self.install_lock.lock().expect("install lock poisoned");
        let _span = Span::enter("serving/epoch_swap");
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snapshot = PartitionSnapshot::from_partition(partition, epoch)?;
        let shards = ShardSet::build_replicated(
            &snapshot,
            self.config.latency_model.clone(),
            self.config.seed,
            self.config.replication,
        );
        self.generation.swap(Generation { snapshot, shards });
        Ok(epoch)
    }

    /// Installs a delta placement under live traffic: only the moved keys' pages and shards
    /// are rebuilt, everything else is shared (`Arc`) with the live generation — the
    /// bounded-churn install path a repartition controller uses every epoch.
    ///
    /// The produced generation is bit-identical to what
    /// [`install_partition`](ServingEngine::install_partition) would build for the same
    /// placement at the same epoch (same shard contents, RNG streams, and counters), which the
    /// conformance tests assert; the full-map path stays as the oracle. Returns the installed
    /// epoch.
    ///
    /// # Errors
    /// Returns [`ServingError::StaleDelta`] when the delta's base epoch is not the live epoch
    /// (another install won the race — recompute against the new generation), and propagates
    /// out-of-range keys or shards.
    pub fn install_delta(&self, delta: &PartitionDelta) -> Result<u64> {
        let _install = self.install_lock.lock().expect("install lock poisoned");
        let _span = Span::enter("serving/epoch_swap");
        let current = self.generation.load();
        if delta.base_epoch() != current.snapshot.epoch() {
            return Err(ServingError::StaleDelta {
                delta_epoch: delta.base_epoch(),
                live_epoch: current.snapshot.epoch(),
            });
        }
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snapshot = current.snapshot.apply_delta(delta, epoch)?;
        let shards =
            current
                .shards
                .apply_delta(&current.snapshot, delta, epoch, self.config.seed)?;
        self.generation.swap(Generation { snapshot, shards });
        Ok(epoch)
    }

    /// The live placement snapshot (an `Arc`-shared view; cheap to call).
    pub fn current_snapshot(&self) -> PartitionSnapshot {
        self.generation.load().snapshot.clone()
    }

    /// Installs the partition of a finished unified-API run ([`shp_core::api::PartitionOutcome`])
    /// as the next serving generation — the warm-start path from `AlgorithmRegistry::run`
    /// straight into the live [`EpochSwap`]: compute off the serving path with any registered
    /// algorithm, then publish with one atomic pointer swap. Returns the installed epoch.
    ///
    /// # Errors
    /// Same contract as [`ServingEngine::install_partition`].
    pub fn warm_start(&self, outcome: &shp_core::api::PartitionOutcome) -> Result<u64> {
        self.install_partition(&outcome.partition)
    }

    /// Number of partition swaps installed since boot.
    pub fn swap_count(&self) -> u64 {
        self.generation.swap_count()
    }

    /// Replays an open-loop arrival schedule against the engine with `clients` concurrent
    /// client threads, then returns the aggregated report. Metrics are reset first, so the
    /// report covers exactly this run.
    ///
    /// # Errors
    /// Propagates the first serving error any client encounters.
    pub fn run_workload(
        &self,
        graph: &BipartiteGraph,
        events: &[WorkloadEvent],
        clients: usize,
    ) -> Result<ServingReport> {
        self.reset_metrics();
        let clients = clients.max(1);
        let chunk = events.len().div_ceil(clients).max(1);
        let outcome: Result<()> = std::thread::scope(|scope| {
            let handles: Vec<_> = events
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || -> Result<()> {
                        for event in slice {
                            self.multiget(graph.query_neighbors(event.query))?;
                        }
                        Ok(())
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("client thread panicked")?;
            }
            Ok(())
        });
        outcome?;
        Ok(self.report())
    }

    /// Aggregated metrics since boot or the last reset.
    pub fn report(&self) -> ServingReport {
        self.metrics.report(self.cache.stats())
    }

    /// Clears the per-query metrics (cache contents and hit counters are preserved).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// The `k` most frequently accessed keys with their approximate hit counts (count
    /// descending, ties by ascending key), from the bounded access sketch. Empty when
    /// telemetry was disabled for the whole run.
    pub fn hot_keys(&self, k: usize) -> Vec<(DataId, u64)> {
        self.tracer.top(k)
    }

    /// Exports the engine's serving metrics as a telemetry [`Snapshot`] with every metric
    /// name under `prefix` (e.g. `serving/shp2`): query/cache counters, per-shard request
    /// counters, the latency histogram, an exact integer-bucketed fanout histogram, skew and
    /// epoch gauges, and the hot-key list.
    ///
    /// Phase spans (`serving/route`, `serving/shard_service`, `serving/epoch_swap`) live in
    /// the process-wide [`shp_telemetry::global`] registry — shared by all engines — and are
    /// merged in by the callers that want them.
    pub fn telemetry_snapshot(&self, prefix: &str) -> Snapshot {
        let report = self.report();
        let mut snap = Snapshot::new();
        snap.counters
            .insert(format!("{prefix}/queries"), report.queries);
        snap.counters
            .insert(format!("{prefix}/cache/hits"), report.cache.hits);
        snap.counters
            .insert(format!("{prefix}/cache/misses"), report.cache.misses);
        snap.counters
            .insert(format!("{prefix}/epoch_swaps"), self.swap_count());
        snap.counters.insert(
            format!("{prefix}/degraded_queries"),
            report.degraded_queries,
        );
        snap.counters
            .insert(format!("{prefix}/fault_retries"), report.retries);
        snap.counters
            .insert(format!("{prefix}/hedges_won"), report.hedges_won);
        for (shard, &count) in report.shard_requests.iter().enumerate() {
            snap.counters
                .insert(format!("{prefix}/shard_requests/{shard:04}"), count);
        }
        snap.gauges
            .insert(format!("{prefix}/availability"), report.availability);
        // Per-shard up/down gauges at the injector's current query clock: 1.0 = serving,
        // 0.0 = scripted down. Only meaningful (and only exported) with an injector attached.
        if let Some(inj) = &self.faults {
            let tick = inj.current_tick();
            for shard in 0..self.num_shards() {
                let up = if inj.is_down(shard, tick) { 0.0 } else { 1.0 };
                snap.gauges
                    .insert(format!("{prefix}/shard_up/{shard:04}"), up);
            }
        }
        snap.gauges
            .insert(format!("{prefix}/shard_skew"), report.shard_skew);
        snap.gauges
            .insert(format!("{prefix}/epoch"), self.current_epoch() as f64);
        snap.gauges
            .insert(format!("{prefix}/mean_fanout"), report.mean_fanout);
        snap.histograms.insert(
            format!("{prefix}/latency"),
            snapshot_of_histogram(self.metrics.latency_histogram()),
        );
        snap.histograms.insert(
            format!("{prefix}/fanout"),
            fanout_histogram_snapshot(&report.fanout_histogram),
        );
        let hot = self.hot_keys(HOT_KEYS_EXPORTED);
        if !hot.is_empty() {
            snap.top_keys.insert(
                format!("{prefix}/hot_keys"),
                shp_telemetry::TopKeysSnapshot { entries: hot },
            );
        }
        snap
    }
}

fn snapshot_of_histogram(h: &shp_telemetry::Histogram) -> HistogramSnapshot {
    HistogramSnapshot {
        count: h.count(),
        sum: h.sum(),
        min: h.min(),
        max: h.max(),
        buckets: h.cumulative_buckets(),
    }
}

/// Renders the exact per-fanout counts as a classic cumulative histogram: the bucket with
/// upper edge `f` counts the multigets that touched at most `f` shards (exact integers, no
/// quantization).
fn fanout_histogram_snapshot(counts: &[u64]) -> HistogramSnapshot {
    let count: u64 = counts.iter().sum();
    let sum: f64 = counts
        .iter()
        .enumerate()
        .map(|(f, &c)| f as f64 * c as f64)
        .sum();
    let min = counts.iter().position(|&c| c > 0).unwrap_or(0) as f64;
    let max = counts.len().saturating_sub(1) as f64;
    let mut buckets = Vec::new();
    let mut cumulative = 0u64;
    for (f, &c) in counts.iter().enumerate() {
        if c > 0 {
            cumulative += c;
            buckets.push((f as f64, cumulative));
        }
    }
    if count > 0 {
        buckets.push((f64::INFINITY, count));
    }
    HistogramSnapshot {
        count,
        sum,
        min,
        max,
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::value_of;
    use shp_hypergraph::GraphBuilder;

    /// `groups` communities of `size` keys; one query per member spanning its community.
    fn community_graph(groups: u32, size: u32) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let members: Vec<u32> = (0..size).map(|i| g * size + i).collect();
            for _ in 0..size {
                b.add_query(members.clone());
            }
        }
        b.build().unwrap()
    }

    fn aligned_partition(graph: &BipartiteGraph, groups: u32, size: u32) -> Partition {
        Partition::from_assignment(
            graph,
            groups,
            (0..groups * size).map(|v| v / size).collect(),
        )
        .unwrap()
    }

    fn scattered_partition(graph: &BipartiteGraph, groups: u32, size: u32) -> Partition {
        Partition::from_assignment(
            graph,
            groups,
            (0..groups * size).map(|v| v % groups).collect(),
        )
        .unwrap()
    }

    #[test]
    fn multiget_returns_each_distinct_key_once_with_verified_values() {
        let graph = community_graph(4, 8);
        let engine =
            ServingEngine::new(&aligned_partition(&graph, 4, 8), EngineConfig::default()).unwrap();
        let result = engine.multiget(&[5, 1, 5, 9, 1, 30]).unwrap();
        assert_eq!(
            result.values,
            vec![
                (1, value_of(1)),
                (5, value_of(5)),
                (9, value_of(9)),
                (30, value_of(30))
            ]
        );
        // Keys 1 and 5 share shard 0; 9 is on shard 1; 30 on shard 3.
        assert_eq!(result.fanout, 3);
        assert_eq!(result.epoch, 0);
    }

    #[test]
    fn aligned_placement_has_lower_fanout_than_scattered() {
        let graph = community_graph(4, 8);
        let config = EngineConfig::default();
        let aligned = ServingEngine::new(&aligned_partition(&graph, 4, 8), config.clone()).unwrap();
        let scattered = ServingEngine::new(&scattered_partition(&graph, 4, 8), config).unwrap();
        for q in graph.queries() {
            aligned.multiget(graph.query_neighbors(q)).unwrap();
            scattered.multiget(graph.query_neighbors(q)).unwrap();
        }
        let a = aligned.report();
        let s = scattered.report();
        assert!(
            (a.mean_fanout - 1.0).abs() < 1e-9,
            "aligned fanout {}",
            a.mean_fanout
        );
        assert!(
            (s.mean_fanout - 4.0).abs() < 1e-9,
            "scattered fanout {}",
            s.mean_fanout
        );
        assert!(a.mean_latency < s.mean_latency);
    }

    #[test]
    fn cache_answers_repeated_hot_keys_and_cuts_fanout() {
        let graph = community_graph(2, 4);
        let config = EngineConfig {
            cache_capacity: 1024,
            ..Default::default()
        };
        let engine = ServingEngine::new(&scattered_partition(&graph, 2, 4), config).unwrap();
        let first = engine.multiget(&[0, 1, 2, 3]).unwrap();
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.fanout, 2);
        let second = engine.multiget(&[0, 1, 2, 3]).unwrap();
        assert_eq!(second.cache_hits, 4);
        assert_eq!(second.fanout, 0);
        assert!(second.latency < first.latency);
        assert_eq!(second.values, first.values);
        let stats = engine.report().cache;
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn install_partition_swaps_epoch_and_preserves_values() {
        let graph = community_graph(3, 4);
        let engine =
            ServingEngine::new(&scattered_partition(&graph, 3, 4), EngineConfig::default())
                .unwrap();
        let before = engine.multiget(&[0, 1, 2, 3]).unwrap();
        let epoch = engine
            .install_partition(&aligned_partition(&graph, 3, 4))
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(engine.current_epoch(), 1);
        assert_eq!(engine.swap_count(), 1);
        let after = engine.multiget(&[0, 1, 2, 3]).unwrap();
        assert_eq!(after.values, before.values);
        assert_eq!(after.epoch, 1);
        assert!(after.fanout < before.fanout);
    }

    #[test]
    fn warm_start_installs_a_registry_outcome() {
        use shp_core::api::{AlgorithmRegistry, NoopObserver, PartitionSpec};
        let graph = community_graph(3, 4);
        let engine =
            ServingEngine::new(&scattered_partition(&graph, 3, 4), EngineConfig::default())
                .unwrap();
        let before = engine.multiget(&[0, 1, 2, 3]).unwrap();
        let spec = PartitionSpec::new(3).with_seed(5).with_max_iterations(10);
        let outcome = AlgorithmRegistry::core()
            .run("shp2", &graph, &spec, &mut NoopObserver)
            .unwrap();
        let epoch = engine.warm_start(&outcome).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(engine.current_epoch(), 1);
        let after = engine.multiget(&[0, 1, 2, 3]).unwrap();
        assert_eq!(after.values, before.values);
        assert_eq!(after.epoch, 1);
    }

    #[test]
    fn install_rejects_mismatched_partitions() {
        let graph = community_graph(2, 4);
        let other = community_graph(2, 5);
        let engine =
            ServingEngine::new(&aligned_partition(&graph, 2, 4), EngineConfig::default()).unwrap();
        let wrong = aligned_partition(&other, 2, 5);
        assert_eq!(
            engine.install_partition(&wrong),
            Err(ServingError::PartitionMismatch {
                got: 10,
                expected: 8
            })
        );
    }

    #[test]
    fn out_of_range_keys_are_rejected() {
        let graph = community_graph(2, 4);
        let engine =
            ServingEngine::new(&aligned_partition(&graph, 2, 4), EngineConfig::default()).unwrap();
        assert_eq!(
            engine.multiget(&[0, 99]),
            Err(ServingError::KeyOutOfRange {
                key: 99,
                num_keys: 8
            })
        );
        let cached = ServingEngine::new(
            &aligned_partition(&graph, 2, 4),
            EngineConfig {
                cache_capacity: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cached.multiget(&[99]).is_err());
    }

    #[test]
    fn scatter_gather_agrees_with_inline_execution() {
        let graph = community_graph(4, 8);
        let engine =
            ServingEngine::new(&scattered_partition(&graph, 4, 8), EngineConfig::default())
                .unwrap();
        let keys: Vec<u32> = (0..32).collect();
        let inline = engine.multiget(&keys).unwrap();
        let scattered = engine.multiget_scatter_gather(&keys).unwrap();
        assert_eq!(inline.values, scattered.values);
        assert_eq!(inline.fanout, scattered.fanout);
    }

    #[test]
    fn empty_multiget_is_served_with_zero_fanout() {
        let graph = community_graph(2, 4);
        let engine =
            ServingEngine::new(&aligned_partition(&graph, 2, 4), EngineConfig::default()).unwrap();
        let result = engine.multiget(&[]).unwrap();
        assert_eq!(result.fanout, 0);
        assert_eq!(result.latency, 0.0);
        assert!(result.values.is_empty());
    }

    #[test]
    fn hot_key_tracing_and_telemetry_snapshot_reflect_traffic() {
        let graph = community_graph(4, 8);
        let engine =
            ServingEngine::new(&aligned_partition(&graph, 4, 8), EngineConfig::default()).unwrap();
        // Key 3 is requested in every multiget; the rest once each.
        for q in 0..8u32 {
            engine.multiget(&[3, 8 + q]).unwrap();
        }
        let hot = engine.hot_keys(1);
        assert_eq!(hot[0].0, 3, "hot keys: {hot:?}");
        assert_eq!(hot[0].1, 8);

        let snap = engine.telemetry_snapshot("serving/test");
        assert_eq!(snap.counters["serving/test/queries"], 8);
        assert_eq!(snap.histograms["serving/test/latency"].count, 8);
        let fanout = &snap.histograms["serving/test/fanout"];
        assert_eq!(fanout.count, 8);
        assert_eq!(fanout.buckets.last().unwrap(), &(f64::INFINITY, 8));
        assert_eq!(snap.top_keys["serving/test/hot_keys"].entries[0], (3, 8));
        assert_eq!(
            snap.counters
                .keys()
                .filter(|k| k.contains("shard_requests"))
                .count(),
            4
        );
        // The snapshot is valid JSON that round-trips.
        let parsed = shp_telemetry::Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn install_delta_swaps_epoch_and_matches_full_install() {
        let graph = community_graph(3, 4);
        let scattered = scattered_partition(&graph, 3, 4);
        let aligned = aligned_partition(&graph, 3, 4);
        let engine = ServingEngine::new(&scattered, EngineConfig::default()).unwrap();
        let before = engine.multiget(&[0, 1, 2, 3]).unwrap();

        let delta =
            crate::partition_map::PartitionDelta::between(&engine.current_snapshot(), &aligned)
                .unwrap();
        let epoch = engine.install_delta(&delta).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(engine.current_epoch(), 1);
        let after = engine.multiget(&[0, 1, 2, 3]).unwrap();
        assert_eq!(after.values, before.values);
        assert_eq!(after.fanout, 1);

        // Oracle: a second engine taking the full-map path lands on the identical generation.
        let oracle = ServingEngine::new(&scattered, EngineConfig::default()).unwrap();
        oracle.install_partition(&aligned).unwrap();
        assert_eq!(engine.current_snapshot(), oracle.current_snapshot());
        let via_delta = engine.multiget(&[0, 5, 9]).unwrap();
        let via_full = oracle.multiget(&[0, 5, 9]).unwrap();
        assert_eq!(via_delta.values, via_full.values);
        assert_eq!(via_delta.latency, via_full.latency);
    }

    #[test]
    fn stale_deltas_are_rejected() {
        let graph = community_graph(3, 4);
        let engine =
            ServingEngine::new(&scattered_partition(&graph, 3, 4), EngineConfig::default())
                .unwrap();
        let aligned = aligned_partition(&graph, 3, 4);
        let delta =
            crate::partition_map::PartitionDelta::between(&engine.current_snapshot(), &aligned)
                .unwrap();
        // Another install lands first; the delta's base epoch 0 is no longer live.
        engine.install_partition(&aligned).unwrap();
        assert_eq!(
            engine.install_delta(&delta),
            Err(ServingError::StaleDelta {
                delta_epoch: 0,
                live_epoch: 1
            })
        );
    }

    #[test]
    fn access_observer_sees_every_distinct_key_set() {
        #[derive(Debug, Default)]
        struct Recorder(std::sync::Mutex<Vec<Vec<u32>>>);
        impl AccessObserver for Recorder {
            fn observe(&self, keys: &[DataId]) {
                self.0.lock().unwrap().push(keys.to_vec());
            }
        }
        let graph = community_graph(2, 4);
        let recorder = Arc::new(Recorder::default());
        let engine = ServingEngine::new(&aligned_partition(&graph, 2, 4), EngineConfig::default())
            .unwrap()
            .with_access_observer(recorder.clone());
        engine.multiget(&[3, 1, 3, 5]).unwrap();
        engine.multiget(&[7]).unwrap();
        let seen = recorder.0.lock().unwrap();
        assert_eq!(*seen, vec![vec![1, 3, 5], vec![7]]);
    }

    #[test]
    fn degraded_multiget_is_typed_and_tracked_in_metrics() {
        use shp_faults::{FaultInjector, FaultPlan};
        let graph = community_graph(3, 4);
        let config = EngineConfig {
            replication: 2,
            ..Default::default()
        };
        // Keys 0..4 live on shard 0 (primary) with replicas on shard 1; crashing both makes
        // exactly those keys unreachable while the rest of the universe still serves.
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new().crash(0, 0).crash(1, 0),
            7,
        ));
        let engine = ServingEngine::new(&aligned_partition(&graph, 3, 4), config)
            .unwrap()
            .with_fault_injector(inj);
        let result = engine.multiget(&[0, 1, 8, 9]).unwrap();
        assert!(result.is_degraded());
        assert_eq!(result.missing_keys, vec![0, 1]);
        assert_eq!(
            result.values,
            vec![(8, value_of(8)), (9, value_of(9))],
            "reachable keys still come back correct"
        );
        assert_eq!(
            result.require_complete(),
            Err(ServingError::DegradedService { missing: 2 })
        );
        // A fully reachable multiget passes require_complete untouched.
        let ok = engine
            .multiget(&[8, 9])
            .unwrap()
            .require_complete()
            .unwrap();
        assert_eq!(ok.values.len(), 2);

        let report = engine.report();
        assert_eq!(report.degraded_queries, 1);
        assert_eq!(report.missing_keys, 2);
        assert!((report.availability - 0.5).abs() < 1e-12);

        let snap = engine.telemetry_snapshot("serving/faulty");
        assert_eq!(snap.counters["serving/faulty/degraded_queries"], 1);
        assert_eq!(snap.gauges["serving/faulty/availability"], 0.5);
        assert_eq!(snap.gauges["serving/faulty/shard_up/0000"], 0.0);
        assert_eq!(snap.gauges["serving/faulty/shard_up/0002"], 1.0);
    }

    #[test]
    fn engine_with_empty_fault_plan_matches_the_plain_engine_bitwise() {
        use shp_faults::{FaultInjector, FaultPlan};
        let graph = community_graph(3, 4);
        let config = EngineConfig {
            replication: 2,
            ..Default::default()
        };
        let plain = ServingEngine::new(&aligned_partition(&graph, 3, 4), config.clone()).unwrap();
        let faulty = ServingEngine::new(&aligned_partition(&graph, 3, 4), config)
            .unwrap()
            .with_fault_injector(Arc::new(FaultInjector::new(FaultPlan::new(), 3)));
        for q in graph.queries() {
            let a = plain.multiget(graph.query_neighbors(q)).unwrap();
            let b = faulty.multiget(graph.query_neighbors(q)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.report(), faulty.report());
    }

    #[test]
    fn replicated_engine_fails_over_and_keeps_serving_correct_values() {
        use shp_faults::{FaultInjector, FaultPlan};
        let graph = community_graph(4, 8);
        let config = EngineConfig {
            replication: 2,
            ..Default::default()
        };
        let engine = ServingEngine::new(&aligned_partition(&graph, 4, 8), config)
            .unwrap()
            .with_fault_injector(Arc::new(FaultInjector::new(
                FaultPlan::new().crash(1, 0),
                9,
            )));
        // Every community query still completes: shard 1's keys fail over to shard 2.
        for q in graph.queries() {
            let keys = graph.query_neighbors(q);
            let result = engine.multiget(keys).unwrap();
            assert!(result.missing_keys.is_empty(), "query {q} degraded");
            assert_eq!(result.values.len(), keys.len());
            for &(k, v) in &result.values {
                assert_eq!(v, value_of(k));
            }
        }
        let report = engine.report();
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.retries, 8, "one retry per shard-1 community query");
    }

    #[test]
    fn run_workload_reports_over_the_whole_schedule() {
        let graph = community_graph(4, 8);
        let engine =
            ServingEngine::new(&aligned_partition(&graph, 4, 8), EngineConfig::default()).unwrap();
        let config = crate::workload::WorkloadConfig {
            arrival_rate: 50.0,
            duration: 10.0,
            ..Default::default()
        };
        let events = crate::workload::open_loop_schedule(graph.num_queries(), &config);
        let report = engine.run_workload(&graph, &events, 4).unwrap();
        assert_eq!(report.queries, events.len() as u64);
        assert!((report.mean_fanout - 1.0).abs() < 1e-9);
        assert!(report.p999 >= report.p50);
    }
}
