//! Error type of the serving engine.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServingError>;

/// Errors surfaced by routing, shard execution, and partition installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// A multiget referenced a key outside the engine's key universe.
    KeyOutOfRange {
        /// Offending key.
        key: u32,
        /// Number of keys the engine serves.
        num_keys: usize,
    },
    /// An installed partition does not cover the engine's key universe.
    PartitionMismatch {
        /// Keys covered by the offered partition.
        got: usize,
        /// Keys the engine serves.
        expected: usize,
    },
    /// A partition with zero buckets was offered.
    EmptyPartition,
    /// A shard was asked for a key it does not hold (placement corruption; should be
    /// impossible while the snapshot and the shard contents swap atomically together).
    MissingKey {
        /// Key that was not found.
        key: u32,
        /// Shard that was expected to hold it.
        shard: u32,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::KeyOutOfRange { key, num_keys } => {
                write!(f, "key {key} out of range (engine serves {num_keys} keys)")
            }
            ServingError::PartitionMismatch { got, expected } => write!(
                f,
                "partition covers {got} keys but the engine serves {expected}"
            ),
            ServingError::EmptyPartition => write!(f, "partition has no buckets"),
            ServingError::MissingKey { key, shard } => {
                write!(f, "shard {shard} is missing key {key} (torn placement)")
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// Serving failures compose with the unified partitioning API via `?`: a partition computed
/// through the [`shp_core::api`] registry can be installed into the engine inside one
/// `ShpResult` chain.
impl From<ServingError> for shp_core::ShpError {
    fn from(err: ServingError) -> Self {
        match err {
            ServingError::PartitionMismatch { got, expected } => {
                shp_core::ShpError::PartitionMismatch {
                    message: format!(
                        "partition covers {got} keys but the engine serves {expected}"
                    ),
                }
            }
            other => shp_core::ShpError::Runtime(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases = [
            (
                ServingError::KeyOutOfRange {
                    key: 9,
                    num_keys: 4,
                },
                "key 9",
            ),
            (
                ServingError::PartitionMismatch {
                    got: 3,
                    expected: 5,
                },
                "covers 3",
            ),
            (ServingError::EmptyPartition, "no buckets"),
            (
                ServingError::MissingKey { key: 2, shard: 1 },
                "missing key 2",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
