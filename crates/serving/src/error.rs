//! Error type of the serving engine.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServingError>;

/// Errors surfaced by routing, shard execution, and partition installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// A multiget referenced a key outside the engine's key universe.
    KeyOutOfRange {
        /// Offending key.
        key: u32,
        /// Number of keys the engine serves.
        num_keys: usize,
    },
    /// An installed partition does not cover the engine's key universe.
    PartitionMismatch {
        /// Keys covered by the offered partition.
        got: usize,
        /// Keys the engine serves.
        expected: usize,
    },
    /// A partition with zero buckets was offered.
    EmptyPartition,
    /// A delta referenced a shard outside the live placement's shard set.
    ShardOutOfRange {
        /// Offending shard id.
        shard: u32,
        /// Number of shards of the live placement.
        num_shards: u32,
    },
    /// A [`PartitionDelta`](crate::partition_map::PartitionDelta) was computed against an
    /// epoch that is no longer live; applying it would silently undo the moves of every
    /// generation installed in between.
    StaleDelta {
        /// Epoch the delta was computed against.
        delta_epoch: u64,
        /// Epoch currently being served.
        live_epoch: u64,
    },
    /// A shard was asked for a key it does not hold (placement corruption; should be
    /// impossible while the snapshot and the shard contents swap atomically together).
    MissingKey {
        /// Key that was not found.
        key: u32,
        /// Shard that was expected to hold it.
        shard: u32,
    },
    /// A multiget came back partial: some keys were unreachable on every replica of their
    /// failover chain. Raised by
    /// [`MultigetResult::require_complete`](crate::MultigetResult::require_complete) for
    /// callers that treat degraded service as an error instead of inspecting the typed
    /// partial result.
    DegradedService {
        /// Number of requested keys that were unreachable on every replica.
        missing: usize,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServingError::KeyOutOfRange { key, num_keys } => {
                write!(f, "key {key} out of range (engine serves {num_keys} keys)")
            }
            ServingError::PartitionMismatch { got, expected } => write!(
                f,
                "partition covers {got} keys but the engine serves {expected}"
            ),
            ServingError::EmptyPartition => write!(f, "partition has no buckets"),
            ServingError::ShardOutOfRange { shard, num_shards } => {
                write!(f, "shard {shard} out of range (placement has {num_shards})")
            }
            ServingError::StaleDelta {
                delta_epoch,
                live_epoch,
            } => write!(
                f,
                "delta computed against epoch {delta_epoch} but epoch {live_epoch} is live"
            ),
            ServingError::MissingKey { key, shard } => {
                write!(f, "shard {shard} is missing key {key} (torn placement)")
            }
            ServingError::DegradedService { missing } => write!(
                f,
                "degraded service: {missing} requested key(s) unreachable on every replica"
            ),
        }
    }
}

impl std::error::Error for ServingError {}

/// Serving failures compose with the unified partitioning API via `?`: a partition computed
/// through the [`shp_core::api`] registry can be installed into the engine inside one
/// `ShpResult` chain.
impl From<ServingError> for shp_core::ShpError {
    fn from(err: ServingError) -> Self {
        match err {
            ServingError::PartitionMismatch { got, expected } => {
                shp_core::ShpError::PartitionMismatch {
                    message: format!(
                        "partition covers {got} keys but the engine serves {expected}"
                    ),
                }
            }
            other => shp_core::ShpError::Runtime(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases = [
            (
                ServingError::KeyOutOfRange {
                    key: 9,
                    num_keys: 4,
                },
                "key 9",
            ),
            (
                ServingError::PartitionMismatch {
                    got: 3,
                    expected: 5,
                },
                "covers 3",
            ),
            (ServingError::EmptyPartition, "no buckets"),
            (
                ServingError::ShardOutOfRange {
                    shard: 7,
                    num_shards: 4,
                },
                "shard 7",
            ),
            (
                ServingError::StaleDelta {
                    delta_epoch: 2,
                    live_epoch: 5,
                },
                "epoch 2",
            ),
            (
                ServingError::MissingKey { key: 2, shard: 1 },
                "missing key 2",
            ),
            (
                ServingError::DegradedService { missing: 3 },
                "degraded service: 3",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
