//! # shp-serving
//!
//! An online, partition-aware **multiget serving engine** with live repartition swap — the
//! storage-tier half of the Social Hash Partitioner story (Kabiljo et al., VLDB 2017).
//!
//! ## Why a serving layer
//!
//! SHP exists to make *serving* cheap. Section 2 of the paper describes the production
//! setting: a user's request becomes one **multiget** for the records of all their friends,
//! and the storage tier must contact every shard that holds at least one of those records.
//! The query's latency is the **maximum** over those parallel per-shard requests, so it grows
//! with the number of shards contacted — the *fanout*. Figure 4 of the paper measures exactly
//! this tail-at-scale dependency: p50/p99 latency climbing steeply as fanout rises, because
//! every extra shard is one more draw from the service-time distribution's tail (one more
//! chance to hit a GC pause, a queue, a slow disk). Halving average fanout is therefore worth
//! more than any single-server optimization — it attacks the tail at its source.
//!
//! This crate is that storage tier in miniature:
//!
//! * [`ShardRouter`] maps a multiget's keys to per-shard batches through a
//!   [`PartitionSnapshot`] — the fanout-defining step.
//! * [`ShardSet`] holds the records in concurrent in-memory KV shards and charges each batch
//!   a service time from `shp-sharding-sim`'s [`LatencyModel`](shp_sharding_sim::LatencyModel),
//!   taking the max across batches (Figure 4's semantics).
//! * [`EpochSwap`] / [`PartitionMap`] double-buffer the placement: a background repartition
//!   (e.g. `shp_core::partition_incremental`) builds the next generation **off the serving
//!   path**, then installs it with one atomic pointer swap — readers in flight finish on the
//!   old generation, so there is no serving gap and no torn multiget.
//! * [`HotKeyCache`] absorbs the hot-key skew of social workloads with hit/miss accounting.
//! * [`ServingMetrics`] aggregates per-query fanout histograms, p50/p99/p999 latency, and
//!   shard load skew into a [`ServingReport`] — on a **lock-free, allocation-free,
//!   bounded-memory** record path (sharded atomics and a log-linear latency histogram from
//!   `shp-telemetry`; percentiles quantized to ≤1.56%, everything else exact). The engine
//!   additionally traces per-key access frequencies into a bounded top-K sketch
//!   ([`ServingEngine::hot_keys`]) and exports everything as a mergeable telemetry snapshot
//!   ([`ServingEngine::telemetry_snapshot`]).
//! * [`ServingEngine`] composes all of the above behind a `multiget` call and an
//!   [`install_partition`](ServingEngine::install_partition) live-swap entry point;
//!   [`workload`] generates skewed open-loop arrival schedules to drive it.
//!
//! ## Quickstart
//!
//! ```
//! use shp_serving::{EngineConfig, ServingEngine};
//! use shp_hypergraph::{GraphBuilder, Partition};
//!
//! // Two communities of three keys, one multiget each.
//! let mut b = GraphBuilder::new();
//! b.add_query([0u32, 1, 2]);
//! b.add_query([3u32, 4, 5]);
//! let graph = b.build().unwrap();
//!
//! // Community-aligned placement: every multiget hits exactly one shard.
//! let partition = Partition::from_assignment(&graph, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
//! let engine = ServingEngine::new(&partition, EngineConfig::default()).unwrap();
//! let result = engine.multiget(&[0, 1, 2]).unwrap();
//! assert_eq!(result.fanout, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod cache;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod partition_map;
pub mod router;
pub mod store;
pub mod workload;

pub use bootstrap::{load_warm_start, load_warm_start_with, WarmStart};
pub use cache::{CacheStats, HotKeyCache};
pub use engine::{AccessObserver, EngineConfig, Generation, MultigetResult, ServingEngine};
pub use error::{Result, ServingError};
pub use metrics::{LegacyServingMetrics, ServingMetrics, ServingReport};
pub use partition_map::{EpochSwap, PartitionDelta, PartitionMap, PartitionSnapshot};
pub use router::{RoutePlan, ShardBatch, ShardRouter};
pub use store::{value_of, BatchResults, Shard, ShardSet};
pub use workload::{open_loop_schedule, WorkloadConfig, WorkloadEvent};
