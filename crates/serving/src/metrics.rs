//! Per-query serving metrics and the aggregated [`ServingReport`].
//!
//! Tracks exactly the quantities the paper's serving argument is about: the fanout histogram
//! (how many shards each multiget touched), latency percentiles up to p999 (the tail that
//! fanout inflates, Figure 4), and per-shard load (whose skew bounds the capacity headroom a
//! partition leaves on the table).

use crate::cache::CacheStats;
use std::fmt;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct MetricsInner {
    fanout_counts: Vec<u64>,
    latencies: Vec<f64>,
    shard_requests: Vec<u64>,
    min_epoch: Option<u64>,
    max_epoch: Option<u64>,
}

/// Thread-safe accumulator of per-query observations.
#[derive(Debug, Default)]
pub struct ServingMetrics {
    inner: Mutex<MetricsInner>,
}

impl ServingMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served multiget: its fanout, the shards it contacted (out of the
    /// generation's `num_shards` total — the full shard count matters so that load
    /// concentrated on low-numbered shards still registers as skew), its simulated latency,
    /// and the placement epoch it was served under.
    pub fn record(
        &self,
        fanout: u32,
        num_shards: u32,
        shards: impl IntoIterator<Item = u32>,
        latency: f64,
        epoch: u64,
    ) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        let f = fanout as usize;
        if inner.fanout_counts.len() <= f {
            inner.fanout_counts.resize(f + 1, 0);
        }
        inner.fanout_counts[f] += 1;
        inner.latencies.push(latency);
        if inner.shard_requests.len() < num_shards as usize {
            inner.shard_requests.resize(num_shards as usize, 0);
        }
        for shard in shards {
            let s = shard as usize;
            if inner.shard_requests.len() <= s {
                inner.shard_requests.resize(s + 1, 0);
            }
            inner.shard_requests[s] += 1;
        }
        inner.min_epoch = Some(inner.min_epoch.map_or(epoch, |e| e.min(epoch)));
        inner.max_epoch = Some(inner.max_epoch.map_or(epoch, |e| e.max(epoch)));
    }

    /// Clears all recorded observations.
    pub fn reset(&self) {
        *self.inner.lock().expect("metrics poisoned") = MetricsInner::default();
    }

    /// Aggregates the recorded observations into a report, attaching the given cache stats.
    pub fn report(&self, cache: CacheStats) -> ServingReport {
        let inner = self.inner.lock().expect("metrics poisoned");
        let queries: u64 = inner.fanout_counts.iter().sum();
        let mean_fanout = if queries == 0 {
            0.0
        } else {
            inner
                .fanout_counts
                .iter()
                .enumerate()
                .map(|(f, &c)| f as f64 * c as f64)
                .sum::<f64>()
                / queries as f64
        };
        let max_fanout = inner
            .fanout_counts
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0) as u32;

        let mut sorted = inner.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
            sorted[idx]
        };
        let mean_latency = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };

        let shard_requests = inner.shard_requests.clone();
        let busiest = shard_requests.iter().copied().max().unwrap_or(0);
        let total_requests: u64 = shard_requests.iter().sum();
        let shard_skew = if total_requests == 0 || shard_requests.is_empty() {
            0.0
        } else {
            busiest as f64 / (total_requests as f64 / shard_requests.len() as f64)
        };

        ServingReport {
            queries,
            mean_fanout,
            max_fanout,
            fanout_histogram: inner.fanout_counts.clone(),
            mean_latency,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            p999: pct(0.999),
            shard_requests,
            shard_skew,
            cache,
            min_epoch: inner.min_epoch.unwrap_or(0),
            max_epoch: inner.max_epoch.unwrap_or(0),
        }
    }
}

/// Aggregated results of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Number of multigets served.
    pub queries: u64,
    /// Mean number of shards contacted per multiget.
    pub mean_fanout: f64,
    /// Largest observed fanout.
    pub max_fanout: u32,
    /// `fanout_histogram[f]` = number of multigets that contacted exactly `f` shards.
    pub fanout_histogram: Vec<u64>,
    /// Mean simulated latency (units of the latency model's `t`).
    pub mean_latency: f64,
    /// Median latency.
    pub p50: f64,
    /// 90th percentile latency.
    pub p90: f64,
    /// 99th percentile latency.
    pub p99: f64,
    /// 99.9th percentile latency.
    pub p999: f64,
    /// Batch requests served per shard.
    pub shard_requests: Vec<u64>,
    /// Load skew: busiest shard's requests over the per-shard mean (1.0 = perfectly even).
    pub shard_skew: f64,
    /// Result-cache hit/miss counters.
    pub cache: CacheStats,
    /// Smallest placement epoch observed by a served query.
    pub min_epoch: u64,
    /// Largest placement epoch observed by a served query.
    pub max_epoch: u64,
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queries        {}", self.queries)?;
        writeln!(
            f,
            "mean fanout    {:.3} (max {})",
            self.mean_fanout, self.max_fanout
        )?;
        writeln!(
            f,
            "latency        mean {:.3}t  p50 {:.3}t  p90 {:.3}t  p99 {:.3}t  p999 {:.3}t",
            self.mean_latency, self.p50, self.p90, self.p99, self.p999
        )?;
        writeln!(
            f,
            "shard skew     {:.3} over {} shards",
            self.shard_skew,
            self.shard_requests.len()
        )?;
        if self.cache.hits + self.cache.misses > 0 {
            writeln!(
                f,
                "cache          {:.1}% hit ({} hits / {} misses)",
                100.0 * self.cache.hit_rate(),
                self.cache.hits,
                self.cache.misses
            )?;
        }
        write!(f, "epochs         {}..={}", self.min_epoch, self.max_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_fanout_latency_and_load() {
        let m = ServingMetrics::new();
        m.record(1, 3, [0], 1.0, 0);
        m.record(2, 3, [0, 1], 3.0, 0);
        m.record(2, 3, [1, 2], 5.0, 1);
        let r = m.report(CacheStats::default());
        assert_eq!(r.queries, 3);
        assert!((r.mean_fanout - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_fanout, 2);
        assert_eq!(r.fanout_histogram, vec![0, 1, 2]);
        assert!((r.mean_latency - 3.0).abs() < 1e-12);
        assert_eq!(r.p50, 3.0);
        assert_eq!(r.shard_requests, vec![2, 2, 1]);
        // Busiest shard served 2 of 5 requests over 3 shards: skew = 2 / (5/3).
        assert!((r.shard_skew - 2.0 / (5.0 / 3.0)).abs() < 1e-12);
        assert_eq!((r.min_epoch, r.max_epoch), (0, 1));
    }

    #[test]
    fn load_concentrated_on_one_shard_registers_full_skew() {
        // All traffic hits shard 0 of a 4-shard generation: the skew must report the idle
        // shards, not shrink the denominator to the shards that happened to be touched.
        let m = ServingMetrics::new();
        for _ in 0..10 {
            m.record(1, 4, [0], 1.0, 0);
        }
        let r = m.report(CacheStats::default());
        assert_eq!(r.shard_requests, vec![10, 0, 0, 0]);
        assert!((r.shard_skew - 4.0).abs() < 1e-12, "skew {}", r.shard_skew);
    }

    #[test]
    fn empty_metrics_produce_zero_report() {
        let r = ServingMetrics::new().report(CacheStats::default());
        assert_eq!(r.queries, 0);
        assert_eq!(r.mean_fanout, 0.0);
        assert_eq!(r.p999, 0.0);
        assert_eq!(r.shard_skew, 0.0);
    }

    #[test]
    fn reset_clears_observations() {
        let m = ServingMetrics::new();
        m.record(3, 3, [0, 1, 2], 2.0, 0);
        m.reset();
        assert_eq!(m.report(CacheStats::default()).queries, 0);
    }

    #[test]
    fn display_renders_the_key_lines() {
        let m = ServingMetrics::new();
        m.record(1, 1, [0], 1.0, 2);
        let text = m.report(CacheStats { hits: 1, misses: 3 }).to_string();
        assert!(text.contains("mean fanout"));
        assert!(text.contains("p999"));
        assert!(text.contains("cache"));
        assert!(text.contains("epochs         2..=2"));
    }

    #[test]
    fn percentiles_are_monotone() {
        let m = ServingMetrics::new();
        for i in 0..1000 {
            m.record(1, 1, [0], i as f64, 0);
        }
        let r = m.report(CacheStats::default());
        assert!(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.p999);
        assert!(r.p999 >= 990.0);
    }
}
