//! Per-query serving metrics and the aggregated [`ServingReport`].
//!
//! Tracks exactly the quantities the paper's serving argument is about: the fanout histogram
//! (how many shards each multiget touched), latency percentiles up to p999 (the tail that
//! fanout inflates, Figure 4), and per-shard load (whose skew bounds the capacity headroom a
//! partition leaves on the table).
//!
//! ## Record path
//!
//! [`ServingMetrics::record`] is **lock-free and allocation-free**: every observation lands in
//! pre-allocated sharded atomics ([`shp_telemetry::IndexedCounter`] for the fanout and
//! per-shard counts, [`shp_telemetry::Histogram`] for latency). Memory is bounded by
//! construction — a replay of any length holds the same few hundred KiB — where the previous
//! implementation pushed every latency into an unbounded `Vec<f64>` under a `Mutex` that
//! serialized all client threads.
//!
//! ## Quantization contract
//!
//! Latency percentiles come out of a log-linear histogram with 64 sub-buckets per octave:
//! each reported percentile is the **lower edge** of the bucket holding the exact rank, so
//! `reported ≤ exact ≤ reported · (1 + 2⁻⁶)` — at most ≈1.56% below the sorted-vector value
//! the old implementation returned (values below `2⁻¹⁶` report 0, values at or above `2¹⁶`
//! clamp). The mean is accumulated in fixed point and is independent of thread interleaving.
//! Everything else in the report — query counts, the fanout histogram, per-shard request
//! counts, skew, epochs — is exact. [`LegacyServingMetrics`] keeps the old sorted-vector
//! implementation as the oracle the conformance tests and the `telemetry_overhead` bench
//! compare against.

use crate::cache::CacheStats;
use shp_telemetry::{Histogram, IndexedCounter};
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Fanout slots tracked exactly; a larger fanout clamps into the overflow slot. Sized past
/// any shard count the serving simulations use.
const MAX_FANOUT_SLOTS: usize = 1025;

/// Shard slots tracked exactly; higher shard ids clamp into the overflow slot.
const MAX_SHARD_SLOTS: usize = 1024;

/// Thread-safe accumulator of per-query observations (see the module docs: the record path
/// is lock-free, memory is bounded, latency percentiles are quantized to ≤1.56%).
#[derive(Debug)]
pub struct ServingMetrics {
    fanout: IndexedCounter,
    latency: Histogram,
    shard_requests: IndexedCounter,
    /// Highest shard-count bound observed (`num_shards` or a touched `shard + 1`), so the
    /// report can show idle shards without storing a resizable vector.
    max_shards: AtomicU32,
    min_epoch: AtomicU64,
    max_epoch: AtomicU64,
    /// Multigets that came back partial (at least one key unreachable on every replica).
    degraded: AtomicU64,
    /// Total unreachable keys across all degraded multigets.
    missing_keys: AtomicU64,
    /// Failover retries performed by the fault-aware execution paths.
    retries: AtomicU64,
    /// Hedged duplicate requests that beat the attempt they shadowed.
    hedges_won: AtomicU64,
}

impl Default for ServingMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServingMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        ServingMetrics {
            fanout: IndexedCounter::new(MAX_FANOUT_SLOTS),
            latency: Histogram::new(),
            shard_requests: IndexedCounter::new(MAX_SHARD_SLOTS),
            max_shards: AtomicU32::new(0),
            min_epoch: AtomicU64::new(u64::MAX),
            max_epoch: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            missing_keys: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
        }
    }

    /// Records one served multiget: its fanout, the shards it contacted (out of the
    /// generation's `num_shards` total — the full shard count matters so that load
    /// concentrated on low-numbered shards still registers as skew), its simulated latency,
    /// and the placement epoch it was served under.
    ///
    /// Lock-free: a bounded number of relaxed atomic operations, no allocation.
    pub fn record(
        &self,
        fanout: u32,
        num_shards: u32,
        shards: impl IntoIterator<Item = u32>,
        latency: f64,
        epoch: u64,
    ) {
        self.fanout.inc(fanout as usize);
        self.latency.record(latency);
        self.max_shards.fetch_max(num_shards, Ordering::Relaxed);
        for shard in shards {
            self.shard_requests.inc(shard as usize);
            self.max_shards.fetch_max(shard + 1, Ordering::Relaxed);
        }
        self.min_epoch.fetch_min(epoch, Ordering::Relaxed);
        self.max_epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Records the fault-tolerance outcome of one served multiget: how many requested keys
    /// were unreachable on every replica (a non-zero count marks the query degraded), how
    /// many failover retries it performed, and how many hedged duplicates won.
    ///
    /// Lock-free, like [`ServingMetrics::record`]; on the no-fault path the engine skips the
    /// call entirely.
    pub fn record_faults(&self, missing_keys: u64, retries: u64, hedges_won: u64) {
        if missing_keys > 0 {
            self.degraded.fetch_add(1, Ordering::Relaxed);
            self.missing_keys.fetch_add(missing_keys, Ordering::Relaxed);
        }
        if retries > 0 {
            self.retries.fetch_add(retries, Ordering::Relaxed);
        }
        if hedges_won > 0 {
            self.hedges_won.fetch_add(hedges_won, Ordering::Relaxed);
        }
    }

    /// Clears all recorded observations.
    pub fn reset(&self) {
        self.fanout.reset();
        self.latency.reset();
        self.shard_requests.reset();
        self.max_shards.store(0, Ordering::Relaxed);
        self.min_epoch.store(u64::MAX, Ordering::Relaxed);
        self.max_epoch.store(0, Ordering::Relaxed);
        self.degraded.store(0, Ordering::Relaxed);
        self.missing_keys.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.hedges_won.store(0, Ordering::Relaxed);
    }

    /// Bytes of metric storage held — constant for the lifetime of the accumulator, however
    /// many observations are recorded.
    pub fn memory_bytes(&self) -> usize {
        self.fanout.memory_bytes()
            + self.latency.memory_bytes()
            + self.shard_requests.memory_bytes()
            + 7 * std::mem::size_of::<u64>()
    }

    /// The latency histogram, for export into a telemetry snapshot.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency
    }

    /// The merged fanout histogram truncated past the largest observed fanout
    /// (`histogram[f]` = multigets that touched exactly `f` shards).
    pub fn fanout_histogram(&self) -> Vec<u64> {
        let mut counts = self.fanout.values(MAX_FANOUT_SLOTS);
        let len = counts.iter().rposition(|&c| c > 0).map_or(0, |f| f + 1);
        counts.truncate(len);
        counts
    }

    /// The per-shard request counts over every shard of the widest generation observed.
    pub fn shard_request_counts(&self) -> Vec<u64> {
        self.shard_requests
            .values(self.max_shards.load(Ordering::Relaxed) as usize)
    }

    /// Aggregates the recorded observations into a report, attaching the given cache stats.
    pub fn report(&self, cache: CacheStats) -> ServingReport {
        let fanout_histogram = self.fanout_histogram();
        let queries: u64 = fanout_histogram.iter().sum();
        let mean_fanout = if queries == 0 {
            0.0
        } else {
            fanout_histogram
                .iter()
                .enumerate()
                .map(|(f, &c)| f as f64 * c as f64)
                .sum::<f64>()
                / queries as f64
        };
        let max_fanout = fanout_histogram.len().saturating_sub(1) as u32;

        let percentiles = self.latency.quantiles(&[0.50, 0.90, 0.99, 0.999]);

        let shard_requests = self.shard_request_counts();
        let busiest = shard_requests.iter().copied().max().unwrap_or(0);
        let total_requests: u64 = shard_requests.iter().sum();
        let shard_skew = if total_requests == 0 || shard_requests.is_empty() {
            0.0
        } else {
            busiest as f64 / (total_requests as f64 / shard_requests.len() as f64)
        };

        let (min_epoch, max_epoch) = if queries == 0 {
            (0, 0)
        } else {
            (
                self.min_epoch.load(Ordering::Relaxed),
                self.max_epoch.load(Ordering::Relaxed),
            )
        };

        let degraded_queries = self.degraded.load(Ordering::Relaxed);
        ServingReport {
            queries,
            mean_fanout,
            max_fanout,
            fanout_histogram,
            mean_latency: self.latency.mean(),
            p50: percentiles[0],
            p90: percentiles[1],
            p99: percentiles[2],
            p999: percentiles[3],
            shard_requests,
            shard_skew,
            cache,
            min_epoch,
            max_epoch,
            degraded_queries,
            missing_keys: self.missing_keys.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            availability: availability(queries, degraded_queries),
        }
    }
}

/// Fraction of served multigets that came back complete: `1 - degraded / queries`, and 1.0
/// before any query is served. Shared by both metric implementations so the conformance
/// oracle stays bit-identical.
fn availability(queries: u64, degraded: u64) -> f64 {
    if queries == 0 {
        1.0
    } else {
        1.0 - degraded as f64 / queries as f64
    }
}

#[derive(Debug, Default)]
struct LegacyInner {
    fanout_counts: Vec<u64>,
    latencies: Vec<f64>,
    shard_requests: Vec<u64>,
    min_epoch: Option<u64>,
    max_epoch: Option<u64>,
}

/// The pre-telemetry implementation: every observation appended to unbounded vectors under a
/// `Mutex`, percentiles computed from the fully sorted latency list.
///
/// Kept (off the serving hot path) as the **exact oracle** for [`ServingMetrics`]: the
/// conformance tests and the `telemetry_overhead` bench feed both implementations the same
/// observations and check that exact fields match and percentiles agree to within the
/// documented ≤1.56% bucket quantization.
#[derive(Debug, Default)]
pub struct LegacyServingMetrics {
    inner: Mutex<LegacyInner>,
}

impl LegacyServingMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served multiget (same contract as [`ServingMetrics::record`], but takes a
    /// `Mutex` and grows vectors).
    pub fn record(
        &self,
        fanout: u32,
        num_shards: u32,
        shards: impl IntoIterator<Item = u32>,
        latency: f64,
        epoch: u64,
    ) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        let f = fanout as usize;
        if inner.fanout_counts.len() <= f {
            inner.fanout_counts.resize(f + 1, 0);
        }
        inner.fanout_counts[f] += 1;
        inner.latencies.push(latency);
        if inner.shard_requests.len() < num_shards as usize {
            inner.shard_requests.resize(num_shards as usize, 0);
        }
        for shard in shards {
            let s = shard as usize;
            if inner.shard_requests.len() <= s {
                inner.shard_requests.resize(s + 1, 0);
            }
            inner.shard_requests[s] += 1;
        }
        inner.min_epoch = Some(inner.min_epoch.map_or(epoch, |e| e.min(epoch)));
        inner.max_epoch = Some(inner.max_epoch.map_or(epoch, |e| e.max(epoch)));
    }

    /// Aggregates into a report with exact sorted-vector percentiles.
    pub fn report(&self, cache: CacheStats) -> ServingReport {
        let inner = self.inner.lock().expect("metrics poisoned");
        let queries: u64 = inner.fanout_counts.iter().sum();
        let mean_fanout = if queries == 0 {
            0.0
        } else {
            inner
                .fanout_counts
                .iter()
                .enumerate()
                .map(|(f, &c)| f as f64 * c as f64)
                .sum::<f64>()
                / queries as f64
        };
        let max_fanout = inner
            .fanout_counts
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0) as u32;

        let mut sorted = inner.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
            sorted[idx]
        };
        let mean_latency = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };

        let shard_requests = inner.shard_requests.clone();
        let busiest = shard_requests.iter().copied().max().unwrap_or(0);
        let total_requests: u64 = shard_requests.iter().sum();
        let shard_skew = if total_requests == 0 || shard_requests.is_empty() {
            0.0
        } else {
            busiest as f64 / (total_requests as f64 / shard_requests.len() as f64)
        };

        ServingReport {
            queries,
            mean_fanout,
            max_fanout,
            fanout_histogram: inner.fanout_counts.clone(),
            mean_latency,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            p999: pct(0.999),
            shard_requests,
            shard_skew,
            cache,
            min_epoch: inner.min_epoch.unwrap_or(0),
            max_epoch: inner.max_epoch.unwrap_or(0),
            // The legacy oracle predates fault injection and never observes faults.
            degraded_queries: 0,
            missing_keys: 0,
            retries: 0,
            hedges_won: 0,
            availability: availability(queries, 0),
        }
    }
}

/// Aggregated results of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Number of multigets served.
    pub queries: u64,
    /// Mean number of shards contacted per multiget.
    pub mean_fanout: f64,
    /// Largest observed fanout.
    pub max_fanout: u32,
    /// `fanout_histogram[f]` = number of multigets that contacted exactly `f` shards.
    pub fanout_histogram: Vec<u64>,
    /// Mean simulated latency (units of the latency model's `t`).
    pub mean_latency: f64,
    /// Median latency.
    pub p50: f64,
    /// 90th percentile latency.
    pub p90: f64,
    /// 99th percentile latency.
    pub p99: f64,
    /// 99.9th percentile latency.
    pub p999: f64,
    /// Batch requests served per shard.
    pub shard_requests: Vec<u64>,
    /// Load skew: busiest shard's requests over the per-shard mean (1.0 = perfectly even).
    pub shard_skew: f64,
    /// Result-cache hit/miss counters.
    pub cache: CacheStats,
    /// Smallest placement epoch observed by a served query.
    pub min_epoch: u64,
    /// Largest placement epoch observed by a served query.
    pub max_epoch: u64,
    /// Multigets that came back partial (at least one requested key unreachable).
    pub degraded_queries: u64,
    /// Total unreachable keys across all degraded multigets.
    pub missing_keys: u64,
    /// Failover retries performed across all multigets.
    pub retries: u64,
    /// Hedged duplicate requests that beat the attempt they shadowed.
    pub hedges_won: u64,
    /// Fraction of multigets served complete: `1 - degraded_queries / queries` (1.0 when no
    /// query has been served).
    pub availability: f64,
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queries        {}", self.queries)?;
        writeln!(
            f,
            "mean fanout    {:.3} (max {})",
            self.mean_fanout, self.max_fanout
        )?;
        writeln!(
            f,
            "latency        mean {:.3}t  p50 {:.3}t  p90 {:.3}t  p99 {:.3}t  p999 {:.3}t",
            self.mean_latency, self.p50, self.p90, self.p99, self.p999
        )?;
        writeln!(
            f,
            "shard skew     {:.3} over {} shards",
            self.shard_skew,
            self.shard_requests.len()
        )?;
        if self.degraded_queries > 0 || self.retries > 0 || self.hedges_won > 0 {
            writeln!(
                f,
                "availability   {:.4} ({} degraded / {} missing keys, {} retries, {} hedges won)",
                self.availability,
                self.degraded_queries,
                self.missing_keys,
                self.retries,
                self.hedges_won
            )?;
        }
        if self.cache.hits + self.cache.misses > 0 {
            writeln!(
                f,
                "cache          {:.1}% hit ({} hits / {} misses)",
                100.0 * self.cache.hit_rate(),
                self.cache.hits,
                self.cache.misses
            )?;
        }
        write!(f, "epochs         {}..={}", self.min_epoch, self.max_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_fanout_latency_and_load() {
        let m = ServingMetrics::new();
        m.record(1, 3, [0], 1.0, 0);
        m.record(2, 3, [0, 1], 3.0, 0);
        m.record(2, 3, [1, 2], 5.0, 1);
        let r = m.report(CacheStats::default());
        assert_eq!(r.queries, 3);
        assert!((r.mean_fanout - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_fanout, 2);
        assert_eq!(r.fanout_histogram, vec![0, 1, 2]);
        assert!((r.mean_latency - 3.0).abs() < 1e-12);
        assert_eq!(r.p50, 3.0);
        assert_eq!(r.shard_requests, vec![2, 2, 1]);
        // Busiest shard served 2 of 5 requests over 3 shards: skew = 2 / (5/3).
        assert!((r.shard_skew - 2.0 / (5.0 / 3.0)).abs() < 1e-12);
        assert_eq!((r.min_epoch, r.max_epoch), (0, 1));
    }

    #[test]
    fn load_concentrated_on_one_shard_registers_full_skew() {
        // All traffic hits shard 0 of a 4-shard generation: the skew must report the idle
        // shards, not shrink the denominator to the shards that happened to be touched.
        let m = ServingMetrics::new();
        for _ in 0..10 {
            m.record(1, 4, [0], 1.0, 0);
        }
        let r = m.report(CacheStats::default());
        assert_eq!(r.shard_requests, vec![10, 0, 0, 0]);
        assert!((r.shard_skew - 4.0).abs() < 1e-12, "skew {}", r.shard_skew);
    }

    #[test]
    fn empty_metrics_produce_zero_report() {
        let r = ServingMetrics::new().report(CacheStats::default());
        assert_eq!(r.queries, 0);
        assert_eq!(r.mean_fanout, 0.0);
        assert_eq!(r.p999, 0.0);
        assert_eq!(r.shard_skew, 0.0);
        assert_eq!((r.min_epoch, r.max_epoch), (0, 0));
    }

    #[test]
    fn reset_clears_observations() {
        let m = ServingMetrics::new();
        m.record(3, 3, [0, 1, 2], 2.0, 0);
        m.record_faults(2, 1, 1);
        m.reset();
        let r = m.report(CacheStats::default());
        assert_eq!(r.queries, 0);
        assert_eq!(r.degraded_queries, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.availability, 1.0);
    }

    #[test]
    fn fault_accounting_drives_availability() {
        let m = ServingMetrics::new();
        for _ in 0..10 {
            m.record(1, 2, [0], 1.0, 0);
        }
        // 2 of 10 queries degraded; retries and hedges accumulate independently.
        m.record_faults(3, 1, 0);
        m.record_faults(1, 2, 1);
        m.record_faults(0, 4, 0); // retries without degradation
        let r = m.report(CacheStats::default());
        assert_eq!(r.degraded_queries, 2);
        assert_eq!(r.missing_keys, 4);
        assert_eq!(r.retries, 7);
        assert_eq!(r.hedges_won, 1);
        assert!((r.availability - 0.8).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("availability   0.8000"), "{text}");
    }

    #[test]
    fn display_renders_the_key_lines() {
        let m = ServingMetrics::new();
        m.record(1, 1, [0], 1.0, 2);
        let text = m.report(CacheStats { hits: 1, misses: 3 }).to_string();
        assert!(text.contains("mean fanout"));
        assert!(text.contains("p999"));
        assert!(text.contains("cache"));
        assert!(text.contains("epochs         2..=2"));
    }

    #[test]
    fn percentiles_are_monotone() {
        let m = ServingMetrics::new();
        for i in 0..1000 {
            m.record(1, 1, [0], i as f64, 0);
        }
        let r = m.report(CacheStats::default());
        assert!(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.p999);
        assert!(r.p999 >= 990.0);
    }

    #[test]
    fn memory_stays_constant_over_a_long_replay() {
        // Satellite of the telemetry PR: the old implementation grew a Vec<f64> per query
        // without bound; the accumulator must now hold identical memory after a million
        // observations as when empty.
        let m = ServingMetrics::new();
        let empty_bytes = m.memory_bytes();
        for i in 0..1_000_000u64 {
            m.record(
                (i % 16) as u32 + 1,
                16,
                [(i % 16) as u32],
                0.5 + (i % 1000) as f64 * 0.01,
                i / 100_000,
            );
        }
        assert_eq!(m.memory_bytes(), empty_bytes);
        let r = m.report(CacheStats::default());
        assert_eq!(r.queries, 1_000_000);
        assert_eq!(r.shard_requests.iter().sum::<u64>(), 1_000_000);
        assert_eq!((r.min_epoch, r.max_epoch), (0, 9));
    }

    /// Feeds the same observation stream into the lock-free implementation and the legacy
    /// sorted-vector oracle and checks the documented conformance contract.
    #[test]
    fn report_conforms_to_the_legacy_oracle_within_quantization() {
        let new = ServingMetrics::new();
        let old = LegacyServingMetrics::new();
        // A deterministic skewed latency stream over 8 shards.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..20_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let fanout = 1 + (state % 8) as u32;
            let shards: Vec<u32> = (0..fanout).map(|s| (s + (i % 8) as u32) % 8).collect();
            let latency = 0.2 + (state % 10_000) as f64 / 500.0;
            let epoch = i / 5_000;
            new.record(fanout, 8, shards.iter().copied(), latency, epoch);
            old.record(fanout, 8, shards.iter().copied(), latency, epoch);
        }
        let n = new.report(CacheStats::default());
        let o = old.report(CacheStats::default());

        // Exact fields are bit-identical.
        assert_eq!(n.queries, o.queries);
        assert_eq!(n.fanout_histogram, o.fanout_histogram);
        assert_eq!(n.max_fanout, o.max_fanout);
        assert_eq!(n.mean_fanout, o.mean_fanout);
        assert_eq!(n.shard_requests, o.shard_requests);
        assert_eq!(n.shard_skew, o.shard_skew);
        assert_eq!((n.min_epoch, n.max_epoch), (o.min_epoch, o.max_epoch));
        // With no faults recorded the fault fields agree bit-for-bit, availability included.
        assert_eq!(n.degraded_queries, o.degraded_queries);
        assert_eq!(n.availability, o.availability);
        assert_eq!(n.availability, 1.0);

        // Latency aggregates obey the quantization contract: each percentile is the lower
        // bucket edge of the oracle's exact value.
        let bound = shp_telemetry::histogram::QUANTIZATION_ERROR;
        for (quantized, exact) in [
            (n.p50, o.p50),
            (n.p90, o.p90),
            (n.p99, o.p99),
            (n.p999, o.p999),
        ] {
            assert!(
                quantized <= exact && exact <= quantized * (1.0 + bound) + 1e-12,
                "quantized {quantized} vs exact {exact}"
            );
        }
        // The fixed-point mean resolves to 2^-14 per observation.
        assert!((n.mean_latency - o.mean_latency).abs() < 1e-3);
    }
}
