//! The swappable partition map: immutable placement snapshots behind an epoch-tagged,
//! atomically replaceable cell.
//!
//! Serving must never pause for a repartition. The engine therefore keeps every piece of
//! placement-dependent state — the assignment vector *and* the shard contents built from it —
//! inside one immutable [`PartitionSnapshot`]-tagged generation, published through an
//! [`EpochSwap`]. Readers `load()` an `Arc` to the current generation and keep using it for
//! the whole multiget, so a concurrent [`EpochSwap::swap`] can never tear a query between the
//! old and new placement: in-flight queries finish on the generation they started on, new
//! queries observe the new one. This is the classic double-buffer / RCU pattern (arc-swap
//! style) built from `std` primitives only.
//!
//! ## Copy-on-write deltas
//!
//! An online repartition controller moves a *bounded* number of keys per epoch (the migration
//! budget), so rebuilding the full assignment vector for every swap would copy millions of
//! untouched entries to change a few hundred. The snapshot therefore stores its assignment in
//! fixed `PAGE_SIZE`-key (4096) pages behind `Arc`s: [`PartitionSnapshot::apply_delta`] clones only
//! the page *table* (one `Arc` bump per page) and copy-on-writes the pages a
//! [`PartitionDelta`] actually touches. A delta moving `m` keys costs `O(pages + m·PAGE_SIZE)`
//! instead of `O(num_keys)`, and the untouched pages are shared bit-for-bit with the previous
//! generation.

use crate::error::{Result, ServingError};
use shp_hypergraph::{DataId, Partition};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Keys per copy-on-write page: 2^12 = 4096. Small enough that a delta touching a handful of
/// keys copies a few KiB per touched page; large enough that the page table stays tiny (one
/// `Arc` per 16 KiB of assignment).
const PAGE_SHIFT: u32 = 12;
/// Page size in keys (`1 << PAGE_SHIFT`).
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// An immutable placement of every key onto a shard, tagged with the epoch that installed it.
///
/// The assignment is stored as fixed-size pages behind `Arc`s so that
/// [`PartitionSnapshot::apply_delta`] can produce the next generation while sharing every
/// untouched page with this one. Equality compares logical content (epoch, shard count, and
/// the full assignment), not sharing structure — a delta-derived snapshot and a freshly built
/// one with the same placement compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSnapshot {
    epoch: u64,
    num_shards: u32,
    num_keys: usize,
    pages: Vec<Arc<Vec<u32>>>,
}

impl PartitionSnapshot {
    /// Captures a partition as the placement of epoch `epoch`.
    ///
    /// # Errors
    /// Returns [`ServingError::EmptyPartition`] when the partition has no buckets.
    pub fn from_partition(partition: &Partition, epoch: u64) -> Result<Self> {
        if partition.num_buckets() == 0 {
            return Err(ServingError::EmptyPartition);
        }
        let assignment = partition.assignment();
        Ok(PartitionSnapshot {
            epoch,
            num_shards: partition.num_buckets(),
            num_keys: assignment.len(),
            pages: assignment
                .chunks(PAGE_SIZE)
                .map(|page| Arc::new(page.to_vec()))
                .collect(),
        })
    }

    /// Epoch at which this snapshot was installed (0 for the initial placement).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards the placement spreads keys over.
    #[inline]
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Number of keys covered by the placement.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// Shard holding `key`.
    ///
    /// # Errors
    /// Returns [`ServingError::KeyOutOfRange`] when the key is outside the placement.
    #[inline]
    pub fn shard_of(&self, key: DataId) -> Result<u32> {
        if (key as usize) >= self.num_keys {
            return Err(ServingError::KeyOutOfRange {
                key,
                num_keys: self.num_keys,
            });
        }
        let page = &self.pages[(key >> PAGE_SHIFT) as usize];
        Ok(page[key as usize & (PAGE_SIZE - 1)])
    }

    /// The full assignment vector (`key -> shard`), flattened out of the page table.
    pub fn assignment(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.num_keys);
        for page in &self.pages {
            out.extend_from_slice(page);
        }
        out
    }

    /// Ids of the keys placed on each shard, in one pass.
    pub fn keys_by_shard(&self) -> Vec<Vec<DataId>> {
        let mut by_shard = vec![Vec::new(); self.num_shards as usize];
        let mut key = 0u32;
        for page in &self.pages {
            for &shard in page.iter() {
                by_shard[shard as usize].push(key);
                key += 1;
            }
        }
        by_shard
    }

    /// The chained replica group serving keys whose primary is `primary`: shard
    /// `(primary + r) % num_shards` holds replica `r`, for `r` in `0..replication`.
    ///
    /// Replication is clamped to `1..=num_shards` so the group never wraps onto itself; the
    /// first candidate is always the primary, making the no-fault path independent of the
    /// replication factor.
    pub fn replica_group(&self, primary: u32, replication: u32) -> Vec<u32> {
        let n = self.num_shards.max(1);
        (0..replication.clamp(1, n))
            .map(|r| (primary + r) % n)
            .collect()
    }

    /// Produces the next generation's snapshot by applying `delta` on top of this one,
    /// copy-on-writing only the pages that contain a moved key. Every untouched page is shared
    /// (`Arc`) with this snapshot.
    ///
    /// # Errors
    /// - [`ServingError::StaleDelta`] when the delta was computed against a different epoch
    ///   than this snapshot's — applying it would silently undo moves from the generations in
    ///   between.
    /// - [`ServingError::KeyOutOfRange`] / [`ServingError::ShardOutOfRange`] when a move names
    ///   a key or shard outside this placement.
    pub fn apply_delta(&self, delta: &PartitionDelta, new_epoch: u64) -> Result<Self> {
        if delta.base_epoch() != self.epoch {
            return Err(ServingError::StaleDelta {
                delta_epoch: delta.base_epoch(),
                live_epoch: self.epoch,
            });
        }
        let mut pages = self.pages.clone();
        for &(key, shard) in delta.moves() {
            if (key as usize) >= self.num_keys {
                return Err(ServingError::KeyOutOfRange {
                    key,
                    num_keys: self.num_keys,
                });
            }
            if shard >= self.num_shards {
                return Err(ServingError::ShardOutOfRange {
                    shard,
                    num_shards: self.num_shards,
                });
            }
            let page = Arc::make_mut(&mut pages[(key >> PAGE_SHIFT) as usize]);
            page[key as usize & (PAGE_SIZE - 1)] = shard;
        }
        Ok(PartitionSnapshot {
            epoch: new_epoch,
            num_shards: self.num_shards,
            num_keys: self.num_keys,
            pages,
        })
    }
}

/// The moved keys between two placement generations: everything an [`EpochSwap`] needs to
/// produce the next [`PartitionSnapshot`] without touching the unmoved majority.
///
/// Moves are stored sorted by key ascending with at most one entry per key, so two deltas
/// describing the same repartition compare equal regardless of how they were assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionDelta {
    base_epoch: u64,
    moves: Vec<(DataId, u32)>,
}

impl PartitionDelta {
    /// Builds a delta of `moves` (`(key, destination shard)`) against the snapshot of epoch
    /// `base_epoch`. Moves are normalized: sorted by key, later duplicates win.
    pub fn new(base_epoch: u64, mut moves: Vec<(DataId, u32)>) -> Self {
        // Stable sort keeps duplicate keys in submission order; dedup-from-the-back keeps the
        // last submitted destination for each key.
        moves.sort_by_key(|&(key, _)| key);
        moves.reverse();
        moves.dedup_by_key(|&mut (key, _)| key);
        moves.reverse();
        PartitionDelta { base_epoch, moves }
    }

    /// Computes the delta that turns `base` into `target`: one move per key whose shard
    /// differs. The result applied to `base` reproduces `target`'s placement exactly.
    ///
    /// # Errors
    /// Returns [`ServingError::PartitionMismatch`] when `target` does not cover the same key
    /// universe as `base`.
    pub fn between(base: &PartitionSnapshot, target: &Partition) -> Result<Self> {
        if target.num_data() != base.num_keys() {
            return Err(ServingError::PartitionMismatch {
                got: target.num_data(),
                expected: base.num_keys(),
            });
        }
        let mut moves = Vec::new();
        let mut key = 0u32;
        for page in &base.pages {
            for &shard in page.iter() {
                let target_shard = target.bucket_of(key);
                if target_shard != shard {
                    moves.push((key, target_shard));
                }
                key += 1;
            }
        }
        Ok(PartitionDelta {
            base_epoch: base.epoch(),
            moves,
        })
    }

    /// Epoch of the snapshot this delta was computed against.
    #[inline]
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// The moves, sorted by key ascending: `(key, destination shard)`.
    #[inline]
    pub fn moves(&self) -> &[(DataId, u32)] {
        &self.moves
    }

    /// Number of keys the delta moves.
    #[inline]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether the delta moves no keys (the epoch still advances when applied).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// An epoch-counting, atomically swappable holder of an immutable generation `T`.
///
/// `load` is wait-free with respect to writers in all practical terms: it briefly takes a read
/// lock only to clone the `Arc`, never while the generation is being *built* (builders prepare
/// the new `T` entirely off to the side).
#[derive(Debug)]
pub struct EpochSwap<T> {
    current: RwLock<Arc<T>>,
    swaps: AtomicU64,
}

impl<T> EpochSwap<T> {
    /// Creates the cell holding the initial generation (epoch 0).
    pub fn new(initial: T) -> Self {
        EpochSwap {
            current: RwLock::new(Arc::new(initial)),
            swaps: AtomicU64::new(0),
        }
    }

    /// Returns the current generation. The caller keeps the `Arc` for as long as it needs a
    /// consistent view; concurrent swaps do not invalidate it.
    #[inline]
    pub fn load(&self) -> Arc<T> {
        self.current
            .read()
            .expect("partition map lock poisoned")
            .clone()
    }

    /// Publishes `next` as the new generation and returns the previous one. The swap itself is
    /// a pointer replacement; readers holding the old generation finish undisturbed.
    pub fn swap(&self, next: T) -> Arc<T> {
        let mut slot = self.current.write().expect("partition map lock poisoned");
        let old = std::mem::replace(&mut *slot, Arc::new(next));
        self.swaps.fetch_add(1, Ordering::Relaxed);
        old
    }

    /// Number of swaps performed since construction.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

/// The plain partition map used where only the placement (not shard contents) must swap,
/// e.g. router-only benchmarks.
pub type PartitionMap = EpochSwap<PartitionSnapshot>;

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn partition(k: u32, assignment: Vec<u32>) -> Partition {
        let mut b = GraphBuilder::new();
        b.add_query(0..assignment.len() as u32);
        let g = b.build().unwrap();
        Partition::from_assignment(&g, k, assignment).unwrap()
    }

    #[test]
    fn snapshot_captures_partition() {
        let p = partition(3, vec![0, 1, 2, 0]);
        let s = PartitionSnapshot::from_partition(&p, 7).unwrap();
        assert_eq!(s.epoch(), 7);
        assert_eq!(s.num_shards(), 3);
        assert_eq!(s.num_keys(), 4);
        assert_eq!(s.shard_of(2).unwrap(), 2);
        assert_eq!(
            s.shard_of(9),
            Err(ServingError::KeyOutOfRange {
                key: 9,
                num_keys: 4
            })
        );
        assert_eq!(s.keys_by_shard(), vec![vec![0, 3], vec![1], vec![2]]);
        assert_eq!(s.assignment(), vec![0, 1, 2, 0]);
    }

    #[test]
    fn snapshot_spanning_multiple_pages_is_consistent() {
        let n = PAGE_SIZE as u32 * 2 + 17;
        let assignment: Vec<u32> = (0..n).map(|v| v % 5).collect();
        let p = partition(5, assignment.clone());
        let s = PartitionSnapshot::from_partition(&p, 0).unwrap();
        assert_eq!(s.num_keys(), n as usize);
        assert_eq!(s.assignment(), assignment);
        for key in [0, PAGE_SIZE as u32 - 1, PAGE_SIZE as u32, n - 1] {
            assert_eq!(s.shard_of(key).unwrap(), key % 5);
        }
        let by_shard = s.keys_by_shard();
        assert_eq!(by_shard.iter().map(Vec::len).sum::<usize>(), n as usize);
    }

    #[test]
    fn replica_groups_chain_and_clamp() {
        let s = PartitionSnapshot::from_partition(&partition(4, vec![0, 1, 2, 3]), 0).unwrap();
        assert_eq!(s.replica_group(1, 1), vec![1]);
        assert_eq!(s.replica_group(1, 2), vec![1, 2]);
        assert_eq!(s.replica_group(3, 3), vec![3, 0, 1]);
        // Replication above the shard count clamps: each shard appears at most once.
        assert_eq!(s.replica_group(2, 9), vec![2, 3, 0, 1]);
        // Replication 0 clamps up to 1 (the primary alone).
        assert_eq!(s.replica_group(0, 0), vec![0]);
    }

    #[test]
    fn apply_delta_moves_only_the_named_keys_and_shares_pages() {
        let n = PAGE_SIZE as u32 * 3;
        let base_assignment: Vec<u32> = vec![0; n as usize];
        let p = partition(2, base_assignment);
        let base = PartitionSnapshot::from_partition(&p, 4).unwrap();
        // Move two keys, both inside the middle page.
        let delta = PartitionDelta::new(4, vec![(PAGE_SIZE as u32 + 1, 1), (PAGE_SIZE as u32, 1)]);
        let next = base.apply_delta(&delta, 5).unwrap();
        assert_eq!(next.epoch(), 5);
        assert_eq!(next.shard_of(PAGE_SIZE as u32).unwrap(), 1);
        assert_eq!(next.shard_of(PAGE_SIZE as u32 + 1).unwrap(), 1);
        assert_eq!(next.shard_of(0).unwrap(), 0);
        assert_eq!(next.shard_of(n - 1).unwrap(), 0);
        // Untouched pages are shared with the base snapshot; the touched one is not.
        assert!(Arc::ptr_eq(&base.pages[0], &next.pages[0]));
        assert!(!Arc::ptr_eq(&base.pages[1], &next.pages[1]));
        assert!(Arc::ptr_eq(&base.pages[2], &next.pages[2]));
        // The base snapshot is untouched.
        assert_eq!(base.shard_of(PAGE_SIZE as u32).unwrap(), 0);
    }

    #[test]
    fn apply_delta_matches_a_full_rebuild() {
        let assignment: Vec<u32> = (0..100u32).map(|v| v % 4).collect();
        let base = PartitionSnapshot::from_partition(&partition(4, assignment.clone()), 0).unwrap();
        let mut target_assignment = assignment;
        for key in [3u32, 40, 41, 99] {
            target_assignment[key as usize] = (target_assignment[key as usize] + 1) % 4;
        }
        let target = partition(4, target_assignment);
        let delta = PartitionDelta::between(&base, &target).unwrap();
        assert_eq!(delta.len(), 4);
        let via_delta = base.apply_delta(&delta, 1).unwrap();
        let via_full = PartitionSnapshot::from_partition(&target, 1).unwrap();
        assert_eq!(via_delta, via_full);
    }

    #[test]
    fn stale_and_out_of_range_deltas_are_rejected() {
        let base = PartitionSnapshot::from_partition(&partition(2, vec![0, 1, 0, 1]), 3).unwrap();
        assert_eq!(
            base.apply_delta(&PartitionDelta::new(2, vec![(0, 1)]), 4),
            Err(ServingError::StaleDelta {
                delta_epoch: 2,
                live_epoch: 3
            })
        );
        assert_eq!(
            base.apply_delta(&PartitionDelta::new(3, vec![(9, 1)]), 4),
            Err(ServingError::KeyOutOfRange {
                key: 9,
                num_keys: 4
            })
        );
        assert_eq!(
            base.apply_delta(&PartitionDelta::new(3, vec![(0, 7)]), 4),
            Err(ServingError::ShardOutOfRange {
                shard: 7,
                num_shards: 2
            })
        );
    }

    #[test]
    fn delta_normalization_sorts_and_keeps_the_last_duplicate() {
        let delta = PartitionDelta::new(0, vec![(5, 1), (2, 3), (5, 2), (1, 0)]);
        assert_eq!(delta.moves(), &[(1, 0), (2, 3), (5, 2)]);
        assert_eq!(delta.len(), 3);
        assert!(!delta.is_empty());
        assert!(PartitionDelta::new(0, vec![]).is_empty());
    }

    #[test]
    fn swap_replaces_generation_and_counts() {
        let p = partition(2, vec![0, 1]);
        let map = PartitionMap::new(PartitionSnapshot::from_partition(&p, 0).unwrap());
        let before = map.load();
        assert_eq!(before.epoch(), 0);
        assert_eq!(map.swap_count(), 0);

        let p2 = partition(2, vec![1, 0]);
        let old = map.swap(PartitionSnapshot::from_partition(&p2, 1).unwrap());
        assert_eq!(old.epoch(), 0);
        assert_eq!(map.load().epoch(), 1);
        assert_eq!(map.swap_count(), 1);
        // The reader that loaded before the swap still sees a fully consistent old view.
        assert_eq!(before.shard_of(0).unwrap(), 0);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_generation() {
        // Alternate between two placements that disagree on every key; readers must always see
        // one of the two pure assignments, never a mix.
        let a = PartitionSnapshot::from_partition(&partition(2, vec![0, 0, 0, 0]), 0).unwrap();
        let b = PartitionSnapshot::from_partition(&partition(2, vec![1, 1, 1, 1]), 1).unwrap();
        let map = PartitionMap::new(a.clone());
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let map = &map;
            let stop_ref = &stop;
            for _ in 0..4 {
                scope.spawn(move || {
                    while !stop_ref.load(Ordering::Relaxed) {
                        let snap = map.load();
                        let first = snap.shard_of(0).unwrap();
                        for k in 1..4 {
                            assert_eq!(snap.shard_of(k).unwrap(), first, "torn snapshot");
                        }
                    }
                });
            }
            for i in 0..200 {
                map.swap(if i % 2 == 0 { b.clone() } else { a.clone() });
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(map.swap_count(), 200);
    }
}
