//! The swappable partition map: immutable placement snapshots behind an epoch-tagged,
//! atomically replaceable cell.
//!
//! Serving must never pause for a repartition. The engine therefore keeps every piece of
//! placement-dependent state — the assignment vector *and* the shard contents built from it —
//! inside one immutable [`PartitionSnapshot`]-tagged generation, published through an
//! [`EpochSwap`]. Readers `load()` an `Arc` to the current generation and keep using it for
//! the whole multiget, so a concurrent [`EpochSwap::swap`] can never tear a query between the
//! old and new placement: in-flight queries finish on the generation they started on, new
//! queries observe the new one. This is the classic double-buffer / RCU pattern (arc-swap
//! style) built from `std` primitives only.

use crate::error::{Result, ServingError};
use shp_hypergraph::{DataId, Partition};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An immutable placement of every key onto a shard, tagged with the epoch that installed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSnapshot {
    epoch: u64,
    num_shards: u32,
    assignment: Vec<u32>,
}

impl PartitionSnapshot {
    /// Captures a partition as the placement of epoch `epoch`.
    ///
    /// # Errors
    /// Returns [`ServingError::EmptyPartition`] when the partition has no buckets.
    pub fn from_partition(partition: &Partition, epoch: u64) -> Result<Self> {
        if partition.num_buckets() == 0 {
            return Err(ServingError::EmptyPartition);
        }
        Ok(PartitionSnapshot {
            epoch,
            num_shards: partition.num_buckets(),
            assignment: partition.assignment().to_vec(),
        })
    }

    /// Epoch at which this snapshot was installed (0 for the initial placement).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards the placement spreads keys over.
    #[inline]
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Number of keys covered by the placement.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.assignment.len()
    }

    /// Shard holding `key`.
    ///
    /// # Errors
    /// Returns [`ServingError::KeyOutOfRange`] when the key is outside the placement.
    #[inline]
    pub fn shard_of(&self, key: DataId) -> Result<u32> {
        self.assignment
            .get(key as usize)
            .copied()
            .ok_or(ServingError::KeyOutOfRange {
                key,
                num_keys: self.assignment.len(),
            })
    }

    /// The raw assignment vector (`key -> shard`).
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Ids of the keys placed on each shard, in one pass.
    pub fn keys_by_shard(&self) -> Vec<Vec<DataId>> {
        let mut by_shard = vec![Vec::new(); self.num_shards as usize];
        for (key, &shard) in self.assignment.iter().enumerate() {
            by_shard[shard as usize].push(key as DataId);
        }
        by_shard
    }
}

/// An epoch-counting, atomically swappable holder of an immutable generation `T`.
///
/// `load` is wait-free with respect to writers in all practical terms: it briefly takes a read
/// lock only to clone the `Arc`, never while the generation is being *built* (builders prepare
/// the new `T` entirely off to the side).
#[derive(Debug)]
pub struct EpochSwap<T> {
    current: RwLock<Arc<T>>,
    swaps: AtomicU64,
}

impl<T> EpochSwap<T> {
    /// Creates the cell holding the initial generation (epoch 0).
    pub fn new(initial: T) -> Self {
        EpochSwap {
            current: RwLock::new(Arc::new(initial)),
            swaps: AtomicU64::new(0),
        }
    }

    /// Returns the current generation. The caller keeps the `Arc` for as long as it needs a
    /// consistent view; concurrent swaps do not invalidate it.
    #[inline]
    pub fn load(&self) -> Arc<T> {
        self.current
            .read()
            .expect("partition map lock poisoned")
            .clone()
    }

    /// Publishes `next` as the new generation and returns the previous one. The swap itself is
    /// a pointer replacement; readers holding the old generation finish undisturbed.
    pub fn swap(&self, next: T) -> Arc<T> {
        let mut slot = self.current.write().expect("partition map lock poisoned");
        let old = std::mem::replace(&mut *slot, Arc::new(next));
        self.swaps.fetch_add(1, Ordering::Relaxed);
        old
    }

    /// Number of swaps performed since construction.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

/// The plain partition map used where only the placement (not shard contents) must swap,
/// e.g. router-only benchmarks.
pub type PartitionMap = EpochSwap<PartitionSnapshot>;

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn partition(k: u32, assignment: Vec<u32>) -> Partition {
        let mut b = GraphBuilder::new();
        b.add_query(0..assignment.len() as u32);
        let g = b.build().unwrap();
        Partition::from_assignment(&g, k, assignment).unwrap()
    }

    #[test]
    fn snapshot_captures_partition() {
        let p = partition(3, vec![0, 1, 2, 0]);
        let s = PartitionSnapshot::from_partition(&p, 7).unwrap();
        assert_eq!(s.epoch(), 7);
        assert_eq!(s.num_shards(), 3);
        assert_eq!(s.num_keys(), 4);
        assert_eq!(s.shard_of(2).unwrap(), 2);
        assert_eq!(
            s.shard_of(9),
            Err(ServingError::KeyOutOfRange {
                key: 9,
                num_keys: 4
            })
        );
        assert_eq!(s.keys_by_shard(), vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn swap_replaces_generation_and_counts() {
        let p = partition(2, vec![0, 1]);
        let map = PartitionMap::new(PartitionSnapshot::from_partition(&p, 0).unwrap());
        let before = map.load();
        assert_eq!(before.epoch(), 0);
        assert_eq!(map.swap_count(), 0);

        let p2 = partition(2, vec![1, 0]);
        let old = map.swap(PartitionSnapshot::from_partition(&p2, 1).unwrap());
        assert_eq!(old.epoch(), 0);
        assert_eq!(map.load().epoch(), 1);
        assert_eq!(map.swap_count(), 1);
        // The reader that loaded before the swap still sees a fully consistent old view.
        assert_eq!(before.shard_of(0).unwrap(), 0);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_generation() {
        // Alternate between two placements that disagree on every key; readers must always see
        // one of the two pure assignments, never a mix.
        let a = PartitionSnapshot::from_partition(&partition(2, vec![0, 0, 0, 0]), 0).unwrap();
        let b = PartitionSnapshot::from_partition(&partition(2, vec![1, 1, 1, 1]), 1).unwrap();
        let map = PartitionMap::new(a.clone());
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let map = &map;
            let stop_ref = &stop;
            for _ in 0..4 {
                scope.spawn(move || {
                    while !stop_ref.load(Ordering::Relaxed) {
                        let snap = map.load();
                        let first = snap.shard_of(0).unwrap();
                        for k in 1..4 {
                            assert_eq!(snap.shard_of(k).unwrap(), first, "torn snapshot");
                        }
                    }
                });
            }
            for i in 0..200 {
                map.swap(if i % 2 == 0 { b.clone() } else { a.clone() });
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(map.swap_count(), 200);
    }
}
