//! The shard router: turns a multiget's key list into per-shard batches.
//!
//! This is the fanout-defining step of the tail-at-scale pipeline: a query's latency is the
//! maximum over the per-shard requests it must issue (Figure 4 of the paper), so the number of
//! batches the router emits *is* the quantity SHP minimizes. The router is stateless; all
//! placement comes from the [`PartitionSnapshot`] the caller passes in, which makes routing
//! trivially safe under live partition swaps.

use crate::error::Result;
use crate::partition_map::PartitionSnapshot;
use shp_hypergraph::DataId;

/// The keys a multiget needs from one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBatch {
    /// Destination shard.
    pub shard: u32,
    /// Deduplicated keys requested from that shard, in ascending order.
    pub keys: Vec<DataId>,
}

impl ShardBatch {
    /// The shards that can serve this batch, in failover order: the primary first, then each
    /// chained replica `(shard + k) % num_shards`. Mirrors
    /// [`PartitionSnapshot::replica_group`] so routing and storage agree on replica placement.
    pub fn failover_candidates(&self, num_shards: u32, replication: u32) -> Vec<u32> {
        let n = num_shards.max(1);
        (0..replication.clamp(1, n))
            .map(|k| (self.shard + k) % n)
            .collect()
    }
}

/// A routed multiget: one batch per shard that must be contacted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePlan {
    /// Epoch of the snapshot the plan was computed against.
    pub epoch: u64,
    /// Per-shard batches, in ascending shard order. The batches partition the deduplicated
    /// key set of the query: every requested key appears in exactly one batch.
    pub batches: Vec<ShardBatch>,
}

impl RoutePlan {
    /// Number of shards the query must contact (its fanout under the snapshot's placement).
    #[inline]
    pub fn fanout(&self) -> u32 {
        self.batches.len() as u32
    }

    /// Total number of (deduplicated) keys fetched by the plan.
    pub fn num_keys(&self) -> usize {
        self.batches.iter().map(|b| b.keys.len()).sum()
    }
}

/// Stateless multiget router.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardRouter;

impl ShardRouter {
    /// Creates a router.
    pub fn new() -> Self {
        ShardRouter
    }

    /// Routes `keys` against `snapshot`: deduplicates the key list, resolves each key's shard,
    /// and groups keys into one batch per contacted shard.
    ///
    /// # Errors
    /// Returns [`crate::ServingError::KeyOutOfRange`] when any key is outside the snapshot,
    /// leaving no partial plan behind.
    pub fn route(&self, snapshot: &PartitionSnapshot, keys: &[DataId]) -> Result<RoutePlan> {
        // Resolve every key first so an out-of-range key fails the whole multiget atomically.
        let mut placed: Vec<(u32, DataId)> = Vec::with_capacity(keys.len());
        for &key in keys {
            placed.push((snapshot.shard_of(key)?, key));
        }
        // Group by shard and deduplicate repeated keys in one sort pass.
        placed.sort_unstable();
        placed.dedup();

        let mut batches: Vec<ShardBatch> = Vec::new();
        for (shard, key) in placed {
            match batches.last_mut() {
                Some(batch) if batch.shard == shard => batch.keys.push(key),
                _ => batches.push(ShardBatch {
                    shard,
                    keys: vec![key],
                }),
            }
        }
        Ok(RoutePlan {
            epoch: snapshot.epoch(),
            batches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServingError;
    use shp_hypergraph::{GraphBuilder, Partition};

    fn snapshot(k: u32, assignment: Vec<u32>) -> PartitionSnapshot {
        let mut b = GraphBuilder::new();
        b.add_query(0..assignment.len() as u32);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, k, assignment).unwrap();
        PartitionSnapshot::from_partition(&p, 3).unwrap()
    }

    #[test]
    fn batches_group_keys_by_shard_in_order() {
        let snap = snapshot(3, vec![2, 0, 1, 0, 2, 1]);
        let plan = ShardRouter::new()
            .route(&snap, &[0, 1, 2, 3, 4, 5])
            .unwrap();
        assert_eq!(plan.epoch, 3);
        assert_eq!(plan.fanout(), 3);
        assert_eq!(plan.num_keys(), 6);
        assert_eq!(
            plan.batches,
            vec![
                ShardBatch {
                    shard: 0,
                    keys: vec![1, 3]
                },
                ShardBatch {
                    shard: 1,
                    keys: vec![2, 5]
                },
                ShardBatch {
                    shard: 2,
                    keys: vec![0, 4]
                },
            ]
        );
    }

    #[test]
    fn duplicate_keys_are_fetched_once() {
        let snap = snapshot(2, vec![0, 1, 0]);
        let plan = ShardRouter::new()
            .route(&snap, &[2, 0, 2, 0, 1, 1])
            .unwrap();
        assert_eq!(plan.fanout(), 2);
        assert_eq!(plan.num_keys(), 3);
        assert_eq!(plan.batches[0].keys, vec![0, 2]);
        assert_eq!(plan.batches[1].keys, vec![1]);
    }

    #[test]
    fn colocated_keys_yield_fanout_one() {
        let snap = snapshot(4, vec![2, 2, 2, 2]);
        let plan = ShardRouter::new().route(&snap, &[3, 1, 0]).unwrap();
        assert_eq!(plan.fanout(), 1);
        assert_eq!(plan.batches[0].shard, 2);
        assert_eq!(plan.batches[0].keys, vec![0, 1, 3]);
    }

    #[test]
    fn out_of_range_key_fails_the_whole_multiget() {
        let snap = snapshot(2, vec![0, 1]);
        let err = ShardRouter::new().route(&snap, &[0, 7]).unwrap_err();
        assert_eq!(
            err,
            ServingError::KeyOutOfRange {
                key: 7,
                num_keys: 2
            }
        );
    }

    #[test]
    fn failover_candidates_start_at_the_primary_and_chain() {
        let batch = ShardBatch {
            shard: 2,
            keys: vec![0],
        };
        assert_eq!(batch.failover_candidates(4, 1), vec![2]);
        assert_eq!(batch.failover_candidates(4, 2), vec![2, 3]);
        assert_eq!(batch.failover_candidates(4, 3), vec![2, 3, 0]);
        // Clamped to the shard count: no shard is listed twice.
        assert_eq!(batch.failover_candidates(3, 8), vec![2, 0, 1]);
        assert_eq!(batch.failover_candidates(4, 0), vec![2]);
    }

    #[test]
    fn empty_multiget_routes_to_nothing() {
        let snap = snapshot(2, vec![0, 1]);
        let plan = ShardRouter::new().route(&snap, &[]).unwrap();
        assert_eq!(plan.fanout(), 0);
        assert_eq!(plan.num_keys(), 0);
    }
}
