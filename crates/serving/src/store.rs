//! The shard set: concurrent in-memory KV shards executing routed batches.
//!
//! Shard contents are immutable once built (the synthetic record store is rebuilt wholesale
//! for every installed partition and swapped together with its [`PartitionSnapshot`]), so key
//! lookups are lock-free; only the per-shard latency RNG sits behind a mutex. Per-request
//! service time comes from `shp-sharding-sim`'s [`LatencyModel`], and a query's latency is the
//! **maximum** over its parallel per-shard requests — the tail-at-scale dependency of Figure 4.

use crate::error::{Result, ServingError};
use crate::partition_map::{PartitionDelta, PartitionSnapshot};
use crate::router::RoutePlan;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_hypergraph::DataId;
use shp_sharding_sim::LatencyModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The synthetic record stored for `key`: a SplitMix64 hash, so that reads can be verified
/// end-to-end (a wrong or missing value indicates a torn swap or routing bug).
pub fn value_of(key: DataId) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One in-memory KV shard.
///
/// Records sit behind an `Arc` so that [`ShardSet::apply_delta`] can hand an untouched
/// shard's contents to the next generation without copying a single record.
#[derive(Debug)]
pub struct Shard {
    /// Immutable records held by this shard (shared with other generations when unchanged).
    data: Arc<HashMap<DataId, u64>>,
    /// Latency RNG, one stream per shard.
    rng: Mutex<Pcg64>,
    /// Number of batch requests served.
    requests: AtomicU64,
    /// Number of keys served.
    keys_served: AtomicU64,
}

impl Shard {
    fn new(keys: &[DataId], seed: u64) -> Self {
        Shard::with_data(
            Arc::new(keys.iter().map(|&k| (k, value_of(k))).collect()),
            seed,
        )
    }

    fn with_data(data: Arc<HashMap<DataId, u64>>, seed: u64) -> Self {
        Shard {
            data,
            rng: Mutex::new(Pcg64::seed_from_u64(seed)),
            requests: AtomicU64::new(0),
            keys_served: AtomicU64::new(0),
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of batch requests this shard has served.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of keys this shard has served (batch sizes summed).
    pub fn keys_served(&self) -> u64 {
        self.keys_served.load(Ordering::Relaxed)
    }

    /// Looks up one key.
    pub fn get(&self, key: DataId) -> Option<u64> {
        self.data.get(&key).copied()
    }

    /// Serves one batch: fetches every key and samples the request's service time.
    fn serve(
        &self,
        shard_id: u32,
        keys: &[DataId],
        model: &LatencyModel,
        out: &mut Vec<(DataId, u64)>,
    ) -> Result<f64> {
        for &key in keys {
            let value = self
                .data
                .get(&key)
                .copied()
                .ok_or(ServingError::MissingKey {
                    key,
                    shard: shard_id,
                })?;
            out.push((key, value));
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.keys_served
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        let mut rng = self.rng.lock().expect("shard rng poisoned");
        Ok(model.sample_request(&mut *rng, keys.len()))
    }
}

/// The result of executing one routed multiget.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResults {
    /// `(key, value)` pairs, concatenated in batch order.
    pub values: Vec<(DataId, u64)>,
    /// Simulated query latency: the maximum over the parallel per-shard requests.
    pub latency: f64,
}

/// A set of shards holding one generation's records.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<Shard>,
    model: LatencyModel,
}

impl ShardSet {
    /// Builds the shard set for a placement snapshot. Every key of the snapshot is stored on
    /// exactly the shard the snapshot assigns it to.
    pub fn build(snapshot: &PartitionSnapshot, model: LatencyModel, seed: u64) -> Self {
        let shards = snapshot
            .keys_by_shard()
            .iter()
            .enumerate()
            .map(|(shard_id, keys)| {
                Shard::new(keys, seed ^ (snapshot.epoch() << 20) ^ shard_id as u64)
            })
            .collect();
        ShardSet { shards, model }
    }

    /// Builds the next generation's shard set from this one by applying `delta`: only shards
    /// that a moved key leaves or enters get their record map cloned and edited; every other
    /// shard shares its records with this generation via `Arc`. Per-shard RNG streams and
    /// request counters are freshly initialized exactly as [`ShardSet::build`] would for
    /// `new_epoch`, so a delta-derived generation behaves bit-identically to a full rebuild of
    /// the same placement at the same epoch.
    ///
    /// # Errors
    /// Propagates [`ServingError::KeyOutOfRange`] / [`ServingError::ShardOutOfRange`] for
    /// moves outside `base`'s placement. `base` must be the snapshot this set was built from.
    pub fn apply_delta(
        &self,
        base: &PartitionSnapshot,
        delta: &PartitionDelta,
        new_epoch: u64,
        seed: u64,
    ) -> Result<ShardSet> {
        let num_shards = self.shards.len();
        let mut removed: Vec<Vec<DataId>> = vec![Vec::new(); num_shards];
        let mut added: Vec<Vec<DataId>> = vec![Vec::new(); num_shards];
        for &(key, to) in delta.moves() {
            let from = base.shard_of(key)?;
            if to as usize >= num_shards {
                return Err(ServingError::ShardOutOfRange {
                    shard: to,
                    num_shards: num_shards as u32,
                });
            }
            if from == to {
                continue;
            }
            removed[from as usize].push(key);
            added[to as usize].push(key);
        }
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(shard_id, shard)| {
                let shard_seed = seed ^ (new_epoch << 20) ^ shard_id as u64;
                if removed[shard_id].is_empty() && added[shard_id].is_empty() {
                    return Shard::with_data(Arc::clone(&shard.data), shard_seed);
                }
                let mut data = (*shard.data).clone();
                for &key in &removed[shard_id] {
                    data.remove(&key);
                }
                for &key in &added[shard_id] {
                    data.insert(key, value_of(key));
                }
                Shard::with_data(Arc::new(data), shard_seed)
            })
            .collect();
        Ok(ShardSet {
            shards,
            model: self.model.clone(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Number of records stored on each shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::len).collect()
    }

    /// Number of batch requests each shard has served so far.
    pub fn shard_requests(&self) -> Vec<u64> {
        self.shards.iter().map(Shard::requests).collect()
    }

    /// Number of keys each shard has served so far (finer-grained load than request counts:
    /// two shards can see the same request rate while one ships far more records).
    pub fn shard_keys_served(&self) -> Vec<u64> {
        self.shards.iter().map(Shard::keys_served).collect()
    }

    /// The latency model shards sample service times from.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.model
    }

    /// Executes a routed multiget, one batch per contacted shard, sequentially in the calling
    /// thread. The recorded latency is still the *parallel* semantics (max over batches);
    /// engine-level concurrency comes from many client threads calling this simultaneously.
    ///
    /// # Errors
    /// Returns [`ServingError::MissingKey`] if a batch references a key its shard does not
    /// hold, which can only happen when a plan is replayed against a different generation.
    pub fn execute(&self, plan: &RoutePlan) -> Result<BatchResults> {
        let mut values = Vec::with_capacity(plan.num_keys());
        let mut latency = 0.0f64;
        for batch in &plan.batches {
            let shard = self
                .shards
                .get(batch.shard as usize)
                .ok_or(ServingError::MissingKey {
                    key: batch.keys[0],
                    shard: batch.shard,
                })?;
            let t = shard.serve(batch.shard, &batch.keys, &self.model, &mut values)?;
            latency = latency.max(t);
        }
        Ok(BatchResults { values, latency })
    }

    /// Executes a routed multiget with one scoped thread per contacted shard — the literal
    /// scatter-gather a real storage tier performs, dispatched through the rayon shim's pool
    /// (one coarse work unit per batch, results gathered in batch order so the value list is
    /// identical to [`ShardSet::execute`]'s). Useful for demonstrations and tests; for
    /// high-throughput replay prefer [`ShardSet::execute`] under concurrent clients, which
    /// avoids per-query thread spawns.
    ///
    /// # Errors
    /// Same contract as [`ShardSet::execute`].
    pub fn execute_scatter_gather(&self, plan: &RoutePlan) -> Result<BatchResults> {
        type BatchOutcome = Result<(Vec<(DataId, u64)>, f64)>;
        let batches: Vec<&crate::router::ShardBatch> = plan.batches.iter().collect();
        let fanout = batches.len();
        let results: Vec<BatchOutcome> = rayon::pool::map_vec(batches, fanout, |_, batch| {
            let shard = self
                .shards
                .get(batch.shard as usize)
                .ok_or(ServingError::MissingKey {
                    key: batch.keys[0],
                    shard: batch.shard,
                })?;
            let mut out = Vec::with_capacity(batch.keys.len());
            let t = shard.serve(batch.shard, &batch.keys, &self.model, &mut out)?;
            Ok((out, t))
        });
        let mut values = Vec::with_capacity(plan.num_keys());
        let mut latency = 0.0f64;
        for result in results {
            let (mut out, t) = result?;
            values.append(&mut out);
            latency = latency.max(t);
        }
        Ok(BatchResults { values, latency })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardRouter;
    use shp_hypergraph::{GraphBuilder, Partition};

    fn snapshot(k: u32, assignment: Vec<u32>) -> PartitionSnapshot {
        let mut b = GraphBuilder::new();
        b.add_query(0..assignment.len() as u32);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, k, assignment).unwrap();
        PartitionSnapshot::from_partition(&p, 0).unwrap()
    }

    #[test]
    fn build_places_every_key_on_its_assigned_shard() {
        let snap = snapshot(3, vec![0, 1, 2, 1, 0]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 1);
        assert_eq!(set.num_shards(), 3);
        assert_eq!(set.shard_sizes(), vec![2, 2, 1]);
        for key in 0..5u32 {
            let shard = snap.shard_of(key).unwrap();
            assert_eq!(set.shards[shard as usize].get(key), Some(value_of(key)));
        }
    }

    #[test]
    fn execute_returns_every_key_exactly_once_with_correct_values() {
        let snap = snapshot(4, vec![3, 1, 0, 2, 1, 3, 0, 2]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 2);
        let plan = ShardRouter::new()
            .route(&snap, &[6, 1, 3, 0, 7, 2])
            .unwrap();
        let results = set.execute(&plan).unwrap();
        let mut keys: Vec<u32> = results.values.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 6, 7]);
        for (k, v) in results.values {
            assert_eq!(v, value_of(k));
        }
        assert!(results.latency > 0.0);
    }

    #[test]
    fn scatter_gather_matches_sequential_coverage() {
        let snap = snapshot(4, (0..64).map(|v| v % 4).collect());
        let set = ShardSet::build(&snap, LatencyModel::default(), 3);
        let keys: Vec<u32> = (0..64).collect();
        let plan = ShardRouter::new().route(&snap, &keys).unwrap();
        let results = set.execute_scatter_gather(&plan).unwrap();
        assert_eq!(results.values.len(), 64);
        let mut seen: Vec<u32> = results.values.iter().map(|&(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, keys);
    }

    #[test]
    fn stale_plan_against_wrong_generation_is_detected() {
        let old = snapshot(2, vec![0, 0, 1, 1]);
        let new = snapshot(2, vec![1, 1, 0, 0]);
        let set_new = ShardSet::build(&new, LatencyModel::default(), 4);
        // A plan routed on the old snapshot fetches key 0 from shard 0; the new generation
        // stores it on shard 1, so execution must fail loudly instead of dropping the key.
        let stale_plan = ShardRouter::new().route(&old, &[0]).unwrap();
        let err = set_new.execute(&stale_plan).unwrap_err();
        assert_eq!(err, ServingError::MissingKey { key: 0, shard: 0 });
    }

    #[test]
    fn request_counters_track_batches() {
        let snap = snapshot(2, vec![0, 1, 0, 1]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 5);
        let plan = ShardRouter::new().route(&snap, &[0, 1, 2, 3]).unwrap();
        set.execute(&plan).unwrap();
        set.execute(&plan).unwrap();
        assert_eq!(set.shard_requests(), vec![2, 2]);
        assert_eq!(set.shard_keys_served(), vec![4, 4]);
    }

    #[test]
    fn values_are_deterministic_hashes() {
        assert_eq!(value_of(7), value_of(7));
        assert_ne!(value_of(7), value_of(8));
    }

    #[test]
    fn apply_delta_moves_records_and_shares_untouched_shards() {
        let snap = snapshot(3, vec![0, 0, 1, 1, 2, 2]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 9);
        let delta = PartitionDelta::new(0, vec![(0, 1)]);
        let next = set.apply_delta(&snap, &delta, 1, 9).unwrap();
        assert_eq!(next.shard_sizes(), vec![1, 3, 2]);
        assert_eq!(next.shards[1].get(0), Some(value_of(0)));
        assert_eq!(next.shards[0].get(0), None);
        // Shard 2 was untouched by the move: its record map is shared, not copied.
        assert!(Arc::ptr_eq(&set.shards[2].data, &next.shards[2].data));
        assert!(!Arc::ptr_eq(&set.shards[0].data, &next.shards[0].data));
        assert_eq!(next.shard_requests(), vec![0, 0, 0]);
    }

    #[test]
    fn delta_generation_behaves_bit_identically_to_a_full_rebuild() {
        let base = snapshot(2, vec![0, 0, 1, 1]);
        let set = ShardSet::build(&base, LatencyModel::default(), 7);
        let delta = PartitionDelta::new(0, vec![(1, 1), (2, 0)]);
        let next_snap = base.apply_delta(&delta, 3).unwrap();
        let via_delta = set.apply_delta(&base, &delta, 3, 7).unwrap();
        let via_full = ShardSet::build(&next_snap, LatencyModel::default(), 7);
        assert_eq!(via_delta.shard_sizes(), via_full.shard_sizes());
        // Same epoch + seed → same per-shard RNG streams → identical sampled latencies.
        let plan = ShardRouter::new().route(&next_snap, &[0, 1, 2, 3]).unwrap();
        let a = via_delta.execute(&plan).unwrap();
        let b = via_full.execute(&plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn apply_delta_rejects_out_of_range_moves() {
        let snap = snapshot(2, vec![0, 1]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 1);
        let err = set
            .apply_delta(&snap, &PartitionDelta::new(0, vec![(0, 5)]), 1, 1)
            .unwrap_err();
        assert_eq!(
            err,
            ServingError::ShardOutOfRange {
                shard: 5,
                num_shards: 2
            }
        );
    }
}
