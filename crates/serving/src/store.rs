//! The shard set: concurrent in-memory KV shards executing routed batches.
//!
//! Shard contents are immutable once built (the synthetic record store is rebuilt wholesale
//! for every installed partition and swapped together with its [`PartitionSnapshot`]), so key
//! lookups are lock-free; only the per-shard latency RNG sits behind a mutex. Per-request
//! service time comes from `shp-sharding-sim`'s [`LatencyModel`], and a query's latency is the
//! **maximum** over its parallel per-shard requests — the tail-at-scale dependency of Figure 4.
//!
//! ## Replication and failover
//!
//! With [`ShardSet::build_replicated`] every shard additionally stores the records of the
//! `R - 1` primaries chained before it (`shard s` replicates primaries `(s - r) mod n` for
//! `r < R`), mirroring [`PartitionSnapshot::replica_group`]. The fault-aware execution paths
//! ([`ShardSet::execute_with_faults`]) walk a batch's failover chain under a
//! [`FaultInjector`]: a down or dropped candidate costs a deterministic timeout, each retry
//! adds a backoff penalty, a slow-but-alive candidate may be hedged with a duplicate request
//! to the next replica (first success wins), and a batch whose entire chain is down degrades
//! into typed `missing` keys instead of an error. When no injector is supplied — or its plan
//! is empty — these paths are bit-identical to [`ShardSet::execute`].

use crate::error::{Result, ServingError};
use crate::partition_map::{PartitionDelta, PartitionSnapshot};
use crate::router::{RoutePlan, ShardBatch};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use shp_faults::FaultInjector;
use shp_hypergraph::DataId;
use shp_sharding_sim::LatencyModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The synthetic record stored for `key`: a SplitMix64 hash, so that reads can be verified
/// end-to-end (a wrong or missing value indicates a torn swap or routing bug).
pub fn value_of(key: DataId) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One in-memory KV shard.
///
/// Records sit behind an `Arc` so that [`ShardSet::apply_delta`] can hand an untouched
/// shard's contents to the next generation without copying a single record.
#[derive(Debug)]
pub struct Shard {
    /// Immutable records held by this shard (shared with other generations when unchanged).
    data: Arc<HashMap<DataId, u64>>,
    /// Latency RNG, one stream per shard.
    rng: Mutex<Pcg64>,
    /// Number of batch requests served.
    requests: AtomicU64,
    /// Number of keys served.
    keys_served: AtomicU64,
}

impl Shard {
    fn new(keys: &[DataId], seed: u64) -> Self {
        Shard::with_data(
            Arc::new(keys.iter().map(|&k| (k, value_of(k))).collect()),
            seed,
        )
    }

    fn with_data(data: Arc<HashMap<DataId, u64>>, seed: u64) -> Self {
        Shard {
            data,
            rng: Mutex::new(Pcg64::seed_from_u64(seed)),
            requests: AtomicU64::new(0),
            keys_served: AtomicU64::new(0),
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of batch requests this shard has served.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of keys this shard has served (batch sizes summed).
    pub fn keys_served(&self) -> u64 {
        self.keys_served.load(Ordering::Relaxed)
    }

    /// Looks up one key.
    pub fn get(&self, key: DataId) -> Option<u64> {
        self.data.get(&key).copied()
    }

    /// Serves one batch: fetches every key and samples the request's service time.
    fn serve(
        &self,
        shard_id: u32,
        keys: &[DataId],
        model: &LatencyModel,
        out: &mut Vec<(DataId, u64)>,
    ) -> Result<f64> {
        for &key in keys {
            let value = self
                .data
                .get(&key)
                .copied()
                .ok_or(ServingError::MissingKey {
                    key,
                    shard: shard_id,
                })?;
            out.push((key, value));
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.keys_served
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        let mut rng = self.rng.lock().expect("shard rng poisoned");
        Ok(model.sample_request(&mut *rng, keys.len()))
    }
}

/// The result of executing one routed multiget.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResults {
    /// `(key, value)` pairs, concatenated in batch order.
    pub values: Vec<(DataId, u64)>,
    /// Simulated query latency: the maximum over the parallel per-shard requests.
    pub latency: f64,
    /// Keys whose entire failover chain was unreachable, ascending. Empty on the no-fault
    /// paths: a non-empty list is a typed partial result, never a silent drop.
    pub missing: Vec<DataId>,
    /// Failover retries performed across all batches of this multiget.
    pub retries: u64,
    /// Hedged duplicate requests that finished before the primary attempt they shadowed.
    pub hedges_won: u64,
}

/// Outcome of walking one batch through its failover chain.
struct BatchServe {
    /// Accumulated latency: timeouts + backoff + the winning attempt (0 when nothing served).
    latency: f64,
    /// Failover retries performed for this batch.
    retries: u64,
    /// Whether the hedged duplicate beat the attempt it shadowed.
    hedges_won: u64,
    /// Whether any candidate served the batch; `false` degrades the keys to `missing`.
    served: bool,
}

/// A set of shards holding one generation's records.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<Shard>,
    model: LatencyModel,
    replication: u32,
}

impl ShardSet {
    /// Builds the shard set for a placement snapshot. Every key of the snapshot is stored on
    /// exactly the shard the snapshot assigns it to (replication factor 1).
    pub fn build(snapshot: &PartitionSnapshot, model: LatencyModel, seed: u64) -> Self {
        Self::build_replicated(snapshot, model, seed, 1)
    }

    /// Builds the shard set with `replication`-way chained replica groups: shard `s` stores
    /// its own primaries plus the records of primaries `(s - r) mod n` for `r < replication`
    /// (clamped to `1..=n`), matching [`PartitionSnapshot::replica_group`]. With
    /// `replication == 1` this is exactly [`ShardSet::build`] — including identical per-shard
    /// RNG streams — so the no-replication path is unchanged bit-for-bit.
    pub fn build_replicated(
        snapshot: &PartitionSnapshot,
        model: LatencyModel,
        seed: u64,
        replication: u32,
    ) -> Self {
        let n = snapshot.num_shards().max(1);
        let replication = replication.clamp(1, n);
        let by_primary = snapshot.keys_by_shard();
        let shards = (0..by_primary.len())
            .map(|shard_id| {
                let shard_seed = seed ^ (snapshot.epoch() << 20) ^ shard_id as u64;
                if replication == 1 {
                    return Shard::new(&by_primary[shard_id], shard_seed);
                }
                let mut keys = Vec::new();
                for r in 0..replication {
                    let primary = (shard_id as u32 + n - r) % n;
                    keys.extend_from_slice(&by_primary[primary as usize]);
                }
                Shard::new(&keys, shard_seed)
            })
            .collect();
        ShardSet {
            shards,
            model,
            replication,
        }
    }

    /// Builds the next generation's shard set from this one by applying `delta`: only shards
    /// that a moved key leaves or enters get their record map cloned and edited; every other
    /// shard shares its records with this generation via `Arc`. Per-shard RNG streams and
    /// request counters are freshly initialized exactly as [`ShardSet::build`] would for
    /// `new_epoch`, so a delta-derived generation behaves bit-identically to a full rebuild of
    /// the same placement at the same epoch.
    ///
    /// # Errors
    /// Propagates [`ServingError::KeyOutOfRange`] / [`ServingError::ShardOutOfRange`] for
    /// moves outside `base`'s placement. `base` must be the snapshot this set was built from.
    pub fn apply_delta(
        &self,
        base: &PartitionSnapshot,
        delta: &PartitionDelta,
        new_epoch: u64,
        seed: u64,
    ) -> Result<ShardSet> {
        let num_shards = self.shards.len();
        let n = num_shards as u32;
        let mut removed: Vec<Vec<DataId>> = vec![Vec::new(); num_shards];
        let mut added: Vec<Vec<DataId>> = vec![Vec::new(); num_shards];
        for &(key, to) in delta.moves() {
            let from = base.shard_of(key)?;
            if to >= n {
                return Err(ServingError::ShardOutOfRange {
                    shard: to,
                    num_shards: n,
                });
            }
            if from == to {
                continue;
            }
            // A moved key leaves every shard of its old replica chain that is not also on the
            // new chain, and enters every shard of the new chain it was not already on. With
            // replication 1 this degenerates to the plain from/to move.
            let old_chain: Vec<u32> = (0..self.replication).map(|r| (from + r) % n).collect();
            let new_chain: Vec<u32> = (0..self.replication).map(|r| (to + r) % n).collect();
            for &shard in &old_chain {
                if !new_chain.contains(&shard) {
                    removed[shard as usize].push(key);
                }
            }
            for &shard in &new_chain {
                if !old_chain.contains(&shard) {
                    added[shard as usize].push(key);
                }
            }
        }
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(shard_id, shard)| {
                let shard_seed = seed ^ (new_epoch << 20) ^ shard_id as u64;
                if removed[shard_id].is_empty() && added[shard_id].is_empty() {
                    return Shard::with_data(Arc::clone(&shard.data), shard_seed);
                }
                let mut data = (*shard.data).clone();
                for &key in &removed[shard_id] {
                    data.remove(&key);
                }
                for &key in &added[shard_id] {
                    data.insert(key, value_of(key));
                }
                Shard::with_data(Arc::new(data), shard_seed)
            })
            .collect();
        Ok(ShardSet {
            shards,
            model: self.model.clone(),
            replication: self.replication,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Replica-group size this set was built with (1 when unreplicated).
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// Number of records stored on each shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::len).collect()
    }

    /// Number of batch requests each shard has served so far.
    pub fn shard_requests(&self) -> Vec<u64> {
        self.shards.iter().map(Shard::requests).collect()
    }

    /// Number of keys each shard has served so far (finer-grained load than request counts:
    /// two shards can see the same request rate while one ships far more records).
    pub fn shard_keys_served(&self) -> Vec<u64> {
        self.shards.iter().map(Shard::keys_served).collect()
    }

    /// The latency model shards sample service times from.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.model
    }

    /// Executes a routed multiget, one batch per contacted shard, sequentially in the calling
    /// thread. The recorded latency is still the *parallel* semantics (max over batches);
    /// engine-level concurrency comes from many client threads calling this simultaneously.
    ///
    /// # Errors
    /// Returns [`ServingError::MissingKey`] if a batch references a key its shard does not
    /// hold, which can only happen when a plan is replayed against a different generation.
    pub fn execute(&self, plan: &RoutePlan) -> Result<BatchResults> {
        let mut values = Vec::with_capacity(plan.num_keys());
        let mut latency = 0.0f64;
        for batch in &plan.batches {
            let shard = self
                .shards
                .get(batch.shard as usize)
                .ok_or(ServingError::MissingKey {
                    key: batch.keys[0],
                    shard: batch.shard,
                })?;
            let t = shard.serve(batch.shard, &batch.keys, &self.model, &mut values)?;
            latency = latency.max(t);
        }
        Ok(BatchResults {
            values,
            latency,
            missing: Vec::new(),
            retries: 0,
            hedges_won: 0,
        })
    }

    /// Executes a routed multiget with one scoped thread per contacted shard — the literal
    /// scatter-gather a real storage tier performs, dispatched through the rayon shim's pool
    /// (one coarse work unit per batch, results gathered in batch order so the value list is
    /// identical to [`ShardSet::execute`]'s). Useful for demonstrations and tests; for
    /// high-throughput replay prefer [`ShardSet::execute`] under concurrent clients, which
    /// avoids per-query thread spawns.
    ///
    /// # Errors
    /// Same contract as [`ShardSet::execute`].
    pub fn execute_scatter_gather(&self, plan: &RoutePlan) -> Result<BatchResults> {
        type BatchOutcome = Result<(Vec<(DataId, u64)>, f64)>;
        let batches: Vec<&crate::router::ShardBatch> = plan.batches.iter().collect();
        let fanout = batches.len();
        let results: Vec<BatchOutcome> = rayon::pool::map_vec(batches, fanout, |_, batch| {
            let shard = self
                .shards
                .get(batch.shard as usize)
                .ok_or(ServingError::MissingKey {
                    key: batch.keys[0],
                    shard: batch.shard,
                })?;
            let mut out = Vec::with_capacity(batch.keys.len());
            let t = shard.serve(batch.shard, &batch.keys, &self.model, &mut out)?;
            Ok((out, t))
        });
        let mut values = Vec::with_capacity(plan.num_keys());
        let mut latency = 0.0f64;
        for result in results {
            let (mut out, t) = result?;
            values.append(&mut out);
            latency = latency.max(t);
        }
        Ok(BatchResults {
            values,
            latency,
            missing: Vec::new(),
            retries: 0,
            hedges_won: 0,
        })
    }

    /// Walks one batch through its failover chain under `inj` at query-clock `tick`.
    ///
    /// Candidate `k` is `(batch.shard + k) % n`. A down or dropped candidate costs
    /// `timeout_factor × mean_t`; each retry adds `k × backoff_factor × mean_t` of budgeted
    /// backoff. The first live candidate serves the batch into `values`; if the injector marks
    /// it slow, a hedged duplicate is sent to the next live candidate in the chain and the
    /// faster of the two wins. An exhausted chain returns `served: false` (the caller degrades
    /// the keys), never an error.
    ///
    /// With no active faults the primary serves directly and the arithmetic reduces to
    /// `0.0 + t × 1.0`, which is bit-identical to the no-fault path.
    fn serve_batch_failover(
        &self,
        batch: &ShardBatch,
        inj: &FaultInjector,
        tick: u64,
        values: &mut Vec<(DataId, u64)>,
    ) -> Result<BatchServe> {
        let candidates = batch.failover_candidates(self.num_shards(), self.replication);
        let policy = inj.policy();
        let mean = self.model.mean_t;
        let mut cost = 0.0f64;
        let mut retries = 0u64;
        for (attempt, &shard_id) in candidates.iter().enumerate() {
            if attempt > 0 {
                retries += 1;
                cost += policy.backoff_factor * mean * attempt as f64;
            }
            if inj.is_down(shard_id, tick) || inj.drops(shard_id, tick, attempt as u64) {
                cost += policy.timeout_factor * mean;
                continue;
            }
            let shard = &self.shards[shard_id as usize];
            let factor = inj.slow_factor(shard_id, tick);
            let t = shard.serve(shard_id, &batch.keys, &self.model, values)? * factor;
            let mut best = t;
            let mut hedges_won = 0u64;
            if factor > 1.0 {
                let hedge_attempt = attempt + 1;
                if hedge_attempt < candidates.len() {
                    let hedge_shard = candidates[hedge_attempt];
                    if !inj.is_down(hedge_shard, tick)
                        && !inj.drops(hedge_shard, tick, hedge_attempt as u64)
                    {
                        // The duplicate fetches the same records; only its latency matters.
                        let mut scratch = Vec::with_capacity(batch.keys.len());
                        let hedge_t = self.shards[hedge_shard as usize].serve(
                            hedge_shard,
                            &batch.keys,
                            &self.model,
                            &mut scratch,
                        )? * inj.slow_factor(hedge_shard, tick);
                        let hedge_total = policy.hedge_delay_factor * mean + hedge_t;
                        if hedge_total < best {
                            best = hedge_total;
                            hedges_won = 1;
                        }
                    }
                }
            }
            return Ok(BatchServe {
                latency: cost + best,
                retries,
                hedges_won,
                served: true,
            });
        }
        Ok(BatchServe {
            latency: cost,
            retries,
            hedges_won: 0,
            served: false,
        })
    }

    /// [`ShardSet::execute`] with optional fault injection: with `faults: None` it delegates
    /// verbatim; with an injector it advances the query clock one tick and serves every batch
    /// through [`ShardSet::serve_batch_failover`], degrading unreachable batches into
    /// `missing` keys. An empty [`shp_faults::FaultPlan`] produces bit-identical results to
    /// the no-fault path (the retained conformance oracle).
    ///
    /// # Errors
    /// Same contract as [`ShardSet::execute`]: stale plans (a key the contacted shard does not
    /// hold, or a shard outside this generation) fail loudly — injected faults never do.
    pub fn execute_with_faults(
        &self,
        plan: &RoutePlan,
        faults: Option<&FaultInjector>,
    ) -> Result<BatchResults> {
        let Some(inj) = faults else {
            return self.execute(plan);
        };
        let tick = inj.begin_query();
        let mut values = Vec::with_capacity(plan.num_keys());
        let mut missing: Vec<DataId> = Vec::new();
        let mut latency = 0.0f64;
        let mut retries = 0u64;
        let mut hedges_won = 0u64;
        for batch in &plan.batches {
            if batch.shard as usize >= self.shards.len() {
                return Err(ServingError::MissingKey {
                    key: batch.keys[0],
                    shard: batch.shard,
                });
            }
            let outcome = self.serve_batch_failover(batch, inj, tick, &mut values)?;
            retries += outcome.retries;
            hedges_won += outcome.hedges_won;
            latency = latency.max(outcome.latency);
            if !outcome.served {
                missing.extend_from_slice(&batch.keys);
            }
        }
        missing.sort_unstable();
        Ok(BatchResults {
            values,
            latency,
            missing,
            retries,
            hedges_won,
        })
    }

    /// [`ShardSet::execute_scatter_gather`] with optional fault injection; see
    /// [`ShardSet::execute_with_faults`] for the failover semantics. Failover attempts from
    /// concurrent batches may interleave on replica RNG streams, so latency determinism under
    /// active faults is only guaranteed for the sequential path; coverage and values are
    /// deterministic on both.
    ///
    /// # Errors
    /// Same contract as [`ShardSet::execute_with_faults`].
    pub fn execute_scatter_gather_with_faults(
        &self,
        plan: &RoutePlan,
        faults: Option<&FaultInjector>,
    ) -> Result<BatchResults> {
        let Some(inj) = faults else {
            return self.execute_scatter_gather(plan);
        };
        let tick = inj.begin_query();
        type FaultOutcome = Result<(Vec<(DataId, u64)>, BatchServe)>;
        let batches: Vec<&ShardBatch> = plan.batches.iter().collect();
        let fanout = batches.len();
        let results: Vec<FaultOutcome> = rayon::pool::map_vec(batches, fanout, |_, batch| {
            if batch.shard as usize >= self.shards.len() {
                return Err(ServingError::MissingKey {
                    key: batch.keys[0],
                    shard: batch.shard,
                });
            }
            let mut out = Vec::with_capacity(batch.keys.len());
            let outcome = self.serve_batch_failover(batch, inj, tick, &mut out)?;
            Ok((out, outcome))
        });
        let mut values = Vec::with_capacity(plan.num_keys());
        let mut missing: Vec<DataId> = Vec::new();
        let mut latency = 0.0f64;
        let mut retries = 0u64;
        let mut hedges_won = 0u64;
        for (batch, result) in plan.batches.iter().zip(results) {
            let (mut out, outcome) = result?;
            values.append(&mut out);
            retries += outcome.retries;
            hedges_won += outcome.hedges_won;
            latency = latency.max(outcome.latency);
            if !outcome.served {
                missing.extend_from_slice(&batch.keys);
            }
        }
        missing.sort_unstable();
        Ok(BatchResults {
            values,
            latency,
            missing,
            retries,
            hedges_won,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardRouter;
    use shp_hypergraph::{GraphBuilder, Partition};

    fn snapshot(k: u32, assignment: Vec<u32>) -> PartitionSnapshot {
        let mut b = GraphBuilder::new();
        b.add_query(0..assignment.len() as u32);
        let g = b.build().unwrap();
        let p = Partition::from_assignment(&g, k, assignment).unwrap();
        PartitionSnapshot::from_partition(&p, 0).unwrap()
    }

    #[test]
    fn build_places_every_key_on_its_assigned_shard() {
        let snap = snapshot(3, vec![0, 1, 2, 1, 0]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 1);
        assert_eq!(set.num_shards(), 3);
        assert_eq!(set.shard_sizes(), vec![2, 2, 1]);
        for key in 0..5u32 {
            let shard = snap.shard_of(key).unwrap();
            assert_eq!(set.shards[shard as usize].get(key), Some(value_of(key)));
        }
    }

    #[test]
    fn execute_returns_every_key_exactly_once_with_correct_values() {
        let snap = snapshot(4, vec![3, 1, 0, 2, 1, 3, 0, 2]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 2);
        let plan = ShardRouter::new()
            .route(&snap, &[6, 1, 3, 0, 7, 2])
            .unwrap();
        let results = set.execute(&plan).unwrap();
        let mut keys: Vec<u32> = results.values.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 6, 7]);
        for (k, v) in results.values {
            assert_eq!(v, value_of(k));
        }
        assert!(results.latency > 0.0);
    }

    #[test]
    fn scatter_gather_matches_sequential_coverage() {
        let snap = snapshot(4, (0..64).map(|v| v % 4).collect());
        let set = ShardSet::build(&snap, LatencyModel::default(), 3);
        let keys: Vec<u32> = (0..64).collect();
        let plan = ShardRouter::new().route(&snap, &keys).unwrap();
        let results = set.execute_scatter_gather(&plan).unwrap();
        assert_eq!(results.values.len(), 64);
        let mut seen: Vec<u32> = results.values.iter().map(|&(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, keys);
    }

    #[test]
    fn stale_plan_against_wrong_generation_is_detected() {
        let old = snapshot(2, vec![0, 0, 1, 1]);
        let new = snapshot(2, vec![1, 1, 0, 0]);
        let set_new = ShardSet::build(&new, LatencyModel::default(), 4);
        // A plan routed on the old snapshot fetches key 0 from shard 0; the new generation
        // stores it on shard 1, so execution must fail loudly instead of dropping the key.
        let stale_plan = ShardRouter::new().route(&old, &[0]).unwrap();
        let err = set_new.execute(&stale_plan).unwrap_err();
        assert_eq!(err, ServingError::MissingKey { key: 0, shard: 0 });
    }

    #[test]
    fn request_counters_track_batches() {
        let snap = snapshot(2, vec![0, 1, 0, 1]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 5);
        let plan = ShardRouter::new().route(&snap, &[0, 1, 2, 3]).unwrap();
        set.execute(&plan).unwrap();
        set.execute(&plan).unwrap();
        assert_eq!(set.shard_requests(), vec![2, 2]);
        assert_eq!(set.shard_keys_served(), vec![4, 4]);
    }

    #[test]
    fn values_are_deterministic_hashes() {
        assert_eq!(value_of(7), value_of(7));
        assert_ne!(value_of(7), value_of(8));
    }

    #[test]
    fn apply_delta_moves_records_and_shares_untouched_shards() {
        let snap = snapshot(3, vec![0, 0, 1, 1, 2, 2]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 9);
        let delta = PartitionDelta::new(0, vec![(0, 1)]);
        let next = set.apply_delta(&snap, &delta, 1, 9).unwrap();
        assert_eq!(next.shard_sizes(), vec![1, 3, 2]);
        assert_eq!(next.shards[1].get(0), Some(value_of(0)));
        assert_eq!(next.shards[0].get(0), None);
        // Shard 2 was untouched by the move: its record map is shared, not copied.
        assert!(Arc::ptr_eq(&set.shards[2].data, &next.shards[2].data));
        assert!(!Arc::ptr_eq(&set.shards[0].data, &next.shards[0].data));
        assert_eq!(next.shard_requests(), vec![0, 0, 0]);
    }

    #[test]
    fn delta_generation_behaves_bit_identically_to_a_full_rebuild() {
        let base = snapshot(2, vec![0, 0, 1, 1]);
        let set = ShardSet::build(&base, LatencyModel::default(), 7);
        let delta = PartitionDelta::new(0, vec![(1, 1), (2, 0)]);
        let next_snap = base.apply_delta(&delta, 3).unwrap();
        let via_delta = set.apply_delta(&base, &delta, 3, 7).unwrap();
        let via_full = ShardSet::build(&next_snap, LatencyModel::default(), 7);
        assert_eq!(via_delta.shard_sizes(), via_full.shard_sizes());
        // Same epoch + seed → same per-shard RNG streams → identical sampled latencies.
        let plan = ShardRouter::new().route(&next_snap, &[0, 1, 2, 3]).unwrap();
        let a = via_delta.execute(&plan).unwrap();
        let b = via_full.execute(&plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn replicated_build_chains_each_primary_onto_the_next_shards() {
        let snap = snapshot(3, vec![0, 0, 1, 2]);
        let set = ShardSet::build_replicated(&snap, LatencyModel::default(), 1, 2);
        assert_eq!(set.replication(), 2);
        // Shard s holds its own primaries plus those of shard (s - 1) mod 3.
        assert_eq!(set.shard_sizes(), vec![3, 3, 2]);
        assert_eq!(set.shards[0].get(3), Some(value_of(3))); // replica of primary 2
        assert_eq!(set.shards[1].get(0), Some(value_of(0))); // replica of primary 0
        assert_eq!(set.shards[2].get(2), Some(value_of(2))); // replica of primary 1
        assert_eq!(set.shards[0].get(2), None); // shard 0 does not replicate shard 1
    }

    #[test]
    fn replication_one_build_matches_the_plain_build_bitwise() {
        let snap = snapshot(3, vec![0, 1, 2, 1, 0]);
        let plain = ShardSet::build(&snap, LatencyModel::default(), 11);
        let replicated = ShardSet::build_replicated(&snap, LatencyModel::default(), 11, 1);
        let plan = ShardRouter::new().route(&snap, &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(
            plain.execute(&plan).unwrap(),
            replicated.execute(&plan).unwrap()
        );
    }

    #[test]
    fn replicated_apply_delta_updates_every_chain_member() {
        let snap = snapshot(3, vec![0, 0, 1, 2]);
        let set = ShardSet::build_replicated(&snap, LatencyModel::default(), 1, 2);
        // Move key 0 from primary 0 to primary 2: chains {0,1} -> {2,0}, so shard 1 loses it,
        // shard 2 gains it, and shard 0 keeps it (primary before, replica after).
        let delta = PartitionDelta::new(0, vec![(0, 2)]);
        let next = set.apply_delta(&snap, &delta, 1, 1).unwrap();
        assert_eq!(next.shards[0].get(0), Some(value_of(0)));
        assert_eq!(next.shards[1].get(0), None);
        assert_eq!(next.shards[2].get(0), Some(value_of(0)));
        // The delta-derived set matches a full replicated rebuild of the new placement.
        let moved = snapshot(3, vec![2, 0, 1, 2]);
        let rebuilt = ShardSet::build_replicated(&moved, LatencyModel::default(), 1, 2);
        assert_eq!(next.shard_sizes(), rebuilt.shard_sizes());
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_the_no_fault_path() {
        use shp_faults::FaultPlan;
        let snap = snapshot(4, (0..32).map(|v| v % 4).collect());
        let build = || ShardSet::build_replicated(&snap, LatencyModel::default(), 6, 2);
        let plain = build();
        let faulty = build();
        let inj = FaultInjector::new(FaultPlan::new(), 99);
        let keys: Vec<u32> = (0..32).collect();
        let plan = ShardRouter::new().route(&snap, &keys).unwrap();
        for _ in 0..5 {
            let a = plain.execute(&plan).unwrap();
            let b = faulty.execute_with_faults(&plan, Some(&inj)).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.shard_requests(), faulty.shard_requests());
    }

    #[test]
    fn failover_serves_from_the_replica_when_the_primary_is_down() {
        use shp_faults::{FaultInjector, FaultPlan};
        let snap = snapshot(3, vec![0, 1, 2]);
        let set = ShardSet::build_replicated(&snap, LatencyModel::default(), 6, 2);
        let inj = FaultInjector::new(FaultPlan::new().crash(0, 0), 5);
        let plan = ShardRouter::new().route(&snap, &[0, 1, 2]).unwrap();
        let results = set.execute_with_faults(&plan, Some(&inj)).unwrap();
        // Key 0's primary (shard 0) is down; its replica on shard 1 serves it.
        assert!(results.missing.is_empty());
        assert_eq!(results.retries, 1);
        let mut keys: Vec<u32> = results.values.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2]);
        for &(k, v) in &results.values {
            assert_eq!(v, value_of(k));
        }
        // The failed attempt + backoff makes the failover batch strictly slower than mean.
        assert!(results.latency > set.latency_model().mean_t);
    }

    #[test]
    fn exhausted_failover_chain_degrades_to_typed_missing_keys() {
        use shp_faults::{FaultInjector, FaultPlan};
        let snap = snapshot(3, vec![0, 1, 2]);
        let set = ShardSet::build_replicated(&snap, LatencyModel::default(), 6, 2);
        // Both shards of key 0's chain (0 and 1) are down: key 0 and key 1 are unreachable
        // (key 1's chain is {1, 2}; shard 2 is up, so key 1 survives via its replica).
        let inj = FaultInjector::new(FaultPlan::new().crash(0, 0).crash(1, 0), 5);
        let plan = ShardRouter::new().route(&snap, &[0, 1, 2]).unwrap();
        let results = set.execute_with_faults(&plan, Some(&inj)).unwrap();
        assert_eq!(results.missing, vec![0]);
        let mut keys: Vec<u32> = results.values.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn hedged_duplicate_wins_only_when_faster() {
        use shp_faults::{FaultInjector, FaultPlan, RetryPolicy};
        let snap = snapshot(2, vec![0, 1]);
        // A huge slow factor guarantees the hedge (replica at normal speed) wins.
        let model = LatencyModel {
            body_cv: 0.0,
            outlier_probability: 0.0,
            ..LatencyModel::default()
        };
        let set = ShardSet::build_replicated(&snap, model, 6, 2);
        let inj = FaultInjector::new(FaultPlan::new().slow(0, 0, u64::MAX, 1000.0), 5)
            .with_policy(RetryPolicy::default());
        let plan = ShardRouter::new().route(&snap, &[0]).unwrap();
        let results = set.execute_with_faults(&plan, Some(&inj)).unwrap();
        assert_eq!(results.hedges_won, 1);
        assert!(results.missing.is_empty());
        assert_eq!(results.values, vec![(0, value_of(0))]);
        // Winner latency = hedge delay + replica time, far below the 1000x slow primary.
        assert!(results.latency < 100.0);
    }

    #[test]
    fn scatter_gather_with_faults_matches_sequential_coverage() {
        use shp_faults::{FaultInjector, FaultPlan};
        let snap = snapshot(4, (0..64).map(|v| v % 4).collect());
        let set = ShardSet::build_replicated(&snap, LatencyModel::default(), 3, 2);
        let seq_inj = FaultInjector::new(FaultPlan::new().crash(1, 0), 7);
        let par_inj = FaultInjector::new(FaultPlan::new().crash(1, 0), 7);
        let keys: Vec<u32> = (0..64).collect();
        let plan = ShardRouter::new().route(&snap, &keys).unwrap();
        let seq = set.execute_with_faults(&plan, Some(&seq_inj)).unwrap();
        let par = set
            .execute_scatter_gather_with_faults(&plan, Some(&par_inj))
            .unwrap();
        assert_eq!(seq.missing, par.missing);
        assert_eq!(seq.retries, par.retries);
        let sort = |r: &BatchResults| {
            let mut v = r.values.clone();
            v.sort_unstable();
            v
        };
        assert_eq!(sort(&seq), sort(&par));
    }

    #[test]
    fn apply_delta_rejects_out_of_range_moves() {
        let snap = snapshot(2, vec![0, 1]);
        let set = ShardSet::build(&snap, LatencyModel::default(), 1);
        let err = set
            .apply_delta(&snap, &PartitionDelta::new(0, vec![(0, 5)]), 1, 1)
            .unwrap_err();
        assert_eq!(
            err,
            ServingError::ShardOutOfRange {
                shard: 5,
                num_shards: 2
            }
        );
    }
}
