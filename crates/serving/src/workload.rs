//! Synthetic open-loop multiget workloads.
//!
//! An *open-loop* load generator draws query arrival times from a Poisson process and never
//! waits for completions — exactly the regime in which tail latency matters, because slow
//! queries pile up instead of throttling the offered load. Queries are drawn from the
//! workload graph's hyperedges (each hyperedge is one user's multiget, Section 2 of the
//! paper), optionally skewed so a small hot set of queries receives a disproportionate share
//! of the traffic, which is what makes a hot-key result cache effective.

use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use shp_hypergraph::QueryId;

/// Configuration of an open-loop workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Mean arrivals per unit of simulated time (the Poisson rate λ).
    pub arrival_rate: f64,
    /// Length of the simulated interval; the expected number of queries is
    /// `arrival_rate * duration`.
    pub duration: f64,
    /// Fraction of queries forming the hot set (0 disables skew).
    pub hot_fraction: f64,
    /// Probability that an arrival draws from the hot set instead of the uniform body.
    pub hot_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            arrival_rate: 100.0,
            duration: 100.0,
            hot_fraction: 0.05,
            hot_probability: 0.3,
            seed: 0x5047,
        }
    }
}

/// One arrival of the open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadEvent {
    /// Simulated arrival time.
    pub at: f64,
    /// The multiget to issue (an index into the workload graph's queries).
    pub query: QueryId,
}

/// Generates the arrival schedule for a workload over `num_queries` distinct multigets.
///
/// Returns an empty schedule when the graph has no queries or the configured interval admits
/// no arrivals. Deterministic for a fixed configuration.
pub fn open_loop_schedule(num_queries: usize, config: &WorkloadConfig) -> Vec<WorkloadEvent> {
    if num_queries == 0 || config.arrival_rate <= 0.0 || config.duration <= 0.0 {
        return Vec::new();
    }
    let mut rng = Pcg64::seed_from_u64(config.seed);
    let hot_set_size =
        ((num_queries as f64 * config.hot_fraction.clamp(0.0, 1.0)) as usize).min(num_queries);
    // A fixed pseudo-random permutation decides which queries are "hot", so the hot set is not
    // biased toward low query ids (which generators often assign to the same community).
    let mut permutation: Vec<QueryId> = (0..num_queries as QueryId).collect();
    for i in (1..permutation.len()).rev() {
        let j = rng.gen_range(0..=i);
        permutation.swap(i, j);
    }

    let mut events = Vec::with_capacity((config.arrival_rate * config.duration) as usize + 16);
    let mut clock = 0.0f64;
    loop {
        // Exponential inter-arrival times: -ln(U) / λ.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        clock += -u.ln() / config.arrival_rate;
        if clock >= config.duration {
            break;
        }
        let query = if hot_set_size > 0 && rng.gen_bool(config.hot_probability.clamp(0.0, 1.0)) {
            permutation[rng.gen_range(0..hot_set_size)]
        } else {
            permutation[rng.gen_range(0..num_queries)]
        };
        events.push(WorkloadEvent { at: clock, query });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let config = WorkloadConfig::default();
        let a = open_loop_schedule(500, &config);
        let b = open_loop_schedule(500, &config);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a
            .iter()
            .all(|e| e.at < config.duration && (e.query as usize) < 500));
    }

    #[test]
    fn arrival_count_matches_the_rate() {
        let config = WorkloadConfig {
            arrival_rate: 50.0,
            duration: 200.0,
            ..Default::default()
        };
        let events = open_loop_schedule(100, &config);
        let expected = 50.0 * 200.0;
        assert!(
            (events.len() as f64) > expected * 0.9 && (events.len() as f64) < expected * 1.1,
            "got {} arrivals, expected about {expected}",
            events.len()
        );
    }

    #[test]
    fn hot_set_receives_extra_traffic() {
        let config = WorkloadConfig {
            arrival_rate: 200.0,
            duration: 100.0,
            hot_fraction: 0.02,
            hot_probability: 0.5,
            seed: 9,
        };
        let num_queries = 1000;
        let events = open_loop_schedule(num_queries, &config);
        let mut counts = vec![0u64; num_queries];
        for e in &events {
            counts[e.query as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let hot_share: u64 = counts.iter().take(20).sum();
        // 2% of queries should absorb roughly half the traffic (far above the 2% a uniform
        // workload would give them).
        assert!(
            hot_share as f64 > events.len() as f64 * 0.35,
            "hot 2% got only {hot_share} of {} events",
            events.len()
        );
    }

    #[test]
    fn degenerate_configurations_yield_empty_schedules() {
        assert!(open_loop_schedule(0, &WorkloadConfig::default()).is_empty());
        let zero_rate = WorkloadConfig {
            arrival_rate: 0.0,
            ..Default::default()
        };
        assert!(open_loop_schedule(10, &zero_rate).is_empty());
        let zero_duration = WorkloadConfig {
            duration: 0.0,
            ..Default::default()
        };
        assert!(open_loop_schedule(10, &zero_duration).is_empty());
    }

    #[test]
    fn no_skew_when_hot_fraction_is_zero() {
        let config = WorkloadConfig {
            hot_fraction: 0.0,
            hot_probability: 0.9,
            arrival_rate: 100.0,
            duration: 50.0,
            ..Default::default()
        };
        let events = open_loop_schedule(50, &config);
        assert!(!events.is_empty());
    }
}
