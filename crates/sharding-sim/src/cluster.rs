//! A sharded key-value cluster and query replay.

use crate::latency::{LatencyModel, LatencySummary};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use shp_hypergraph::{BipartiteGraph, Partition, QueryId};
use std::collections::HashMap;

/// One observed query during replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryObservation {
    /// The replayed query.
    pub query: QueryId,
    /// Its fanout under the cluster's placement (number of shards contacted).
    pub fanout: u32,
    /// Number of records fetched.
    pub records: usize,
    /// Simulated latency (max over the parallel shard requests).
    pub latency: f64,
}

/// Aggregated replay results: latency percentiles bucketed by query fanout, which is exactly
/// the data plotted in Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Average fanout over all replayed queries.
    pub average_fanout: f64,
    /// Overall latency summary.
    pub overall: LatencySummary,
    /// Latency summary per observed fanout value (sorted by fanout).
    pub by_fanout: Vec<(u32, LatencySummary)>,
}

/// A cluster of `k` storage shards holding the data vertices of a bipartite graph according to
/// a partition ("data record `v` lives on shard `partition.bucket_of(v)`").
#[derive(Debug, Clone)]
pub struct ShardedCluster {
    num_shards: u32,
    /// Shard of every data record.
    placement: Vec<u32>,
    latency_model: LatencyModel,
}

impl ShardedCluster {
    /// Builds a cluster from a partition of the graph's data vertices.
    pub fn from_partition(partition: &Partition, latency_model: LatencyModel) -> Self {
        ShardedCluster {
            num_shards: partition.num_buckets(),
            placement: partition.assignment().to_vec(),
            latency_model,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Shard holding data record `v`.
    pub fn shard_of(&self, v: u32) -> u32 {
        self.placement[v as usize]
    }

    /// Number of records stored on each shard.
    pub fn shard_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_shards as usize];
        for &s in &self.placement {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Executes one multi-get query: groups the requested records by shard, issues one request
    /// per shard in parallel, and returns `(fanout, latency)`.
    pub fn execute_query<R: rand::Rng>(&self, rng: &mut R, records: &[u32]) -> (u32, f64) {
        let mut per_shard: HashMap<u32, usize> = HashMap::new();
        for &v in records {
            *per_shard.entry(self.placement[v as usize]).or_insert(0) += 1;
        }
        let fanout = per_shard.len() as u32;
        let mut counts: Vec<usize> = per_shard.into_values().collect();
        counts.sort_unstable(); // deterministic order for the RNG stream
        let latency = self.latency_model.sample_query(rng, &counts);
        (fanout, latency)
    }

    /// Replays every query of the bipartite graph (optionally repeating the workload several
    /// times) and aggregates latency by fanout.
    pub fn replay(&self, graph: &BipartiteGraph, repetitions: usize, seed: u64) -> ReplayReport {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut observations: Vec<QueryObservation> = Vec::new();
        for _ in 0..repetitions.max(1) {
            for q in graph.queries() {
                let records = graph.query_neighbors(q);
                if records.is_empty() {
                    continue;
                }
                let (fanout, latency) = self.execute_query(&mut rng, records);
                observations.push(QueryObservation {
                    query: q,
                    fanout,
                    records: records.len(),
                    latency,
                });
            }
        }
        summarize(&observations)
    }

    /// Runs the paper's "synthetic" experiment (Figure 4a): for each fanout `f` in
    /// `1..=max_fanout`, issues `samples` trivial queries touching `f` distinct shards and
    /// reports the latency percentiles per fanout.
    pub fn synthetic_fanout_sweep(
        &self,
        max_fanout: u32,
        samples: usize,
        seed: u64,
    ) -> ReplayReport {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut observations = Vec::new();
        for fanout in 1..=max_fanout.min(self.num_shards.max(1)) {
            for i in 0..samples {
                let counts = vec![1usize; fanout as usize];
                let latency = self.latency_model.sample_query(&mut rng, &counts);
                observations.push(QueryObservation {
                    query: (fanout as usize * samples + i) as QueryId,
                    fanout,
                    records: fanout as usize,
                    latency,
                });
            }
        }
        summarize(&observations)
    }
}

/// Aggregates raw observations into a [`ReplayReport`].
fn summarize(observations: &[QueryObservation]) -> ReplayReport {
    let all: Vec<f64> = observations.iter().map(|o| o.latency).collect();
    let average_fanout = if observations.is_empty() {
        0.0
    } else {
        observations.iter().map(|o| o.fanout as f64).sum::<f64>() / observations.len() as f64
    };
    let mut grouped: HashMap<u32, Vec<f64>> = HashMap::new();
    for o in observations {
        grouped.entry(o.fanout).or_default().push(o.latency);
    }
    let mut by_fanout: Vec<(u32, LatencySummary)> = grouped
        .into_iter()
        .map(|(f, samples)| (f, LatencySummary::from_samples(&samples)))
        .collect();
    by_fanout.sort_by_key(|&(f, _)| f);
    ReplayReport {
        average_fanout,
        overall: LatencySummary::from_samples(&all),
        by_fanout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shp_hypergraph::GraphBuilder;

    fn graph_and_partitions() -> (BipartiteGraph, Partition, Partition) {
        // 4 communities of 10 data records, one query per community member over the community.
        let mut b = GraphBuilder::new();
        for g in 0..4u32 {
            let members: Vec<u32> = (0..10).map(|i| g * 10 + i).collect();
            for _ in 0..10 {
                b.add_query(members.clone());
            }
        }
        let graph = b.build().unwrap();
        // Good placement: one community per shard. Bad placement: round-robin.
        let good =
            Partition::from_assignment(&graph, 4, (0..40).map(|v| v / 10).collect()).unwrap();
        let bad = Partition::from_assignment(&graph, 4, (0..40).map(|v| v % 4).collect()).unwrap();
        (graph, good, bad)
    }

    #[test]
    fn good_placement_has_lower_fanout_and_latency() {
        let (graph, good, bad) = graph_and_partitions();
        let model = LatencyModel::default();
        let good_cluster = ShardedCluster::from_partition(&good, model.clone());
        let bad_cluster = ShardedCluster::from_partition(&bad, model);
        let good_report = good_cluster.replay(&graph, 20, 1);
        let bad_report = bad_cluster.replay(&graph, 20, 1);
        assert!((good_report.average_fanout - 1.0).abs() < 1e-9);
        assert!((bad_report.average_fanout - 4.0).abs() < 1e-9);
        assert!(
            good_report.overall.mean < bad_report.overall.mean,
            "good {} vs bad {}",
            good_report.overall.mean,
            bad_report.overall.mean
        );
        assert!(good_report.overall.p99 < bad_report.overall.p99);
    }

    #[test]
    fn shard_sizes_match_partition_weights() {
        let (_, good, _) = graph_and_partitions();
        let cluster = ShardedCluster::from_partition(&good, LatencyModel::default());
        assert_eq!(cluster.num_shards(), 4);
        assert_eq!(cluster.shard_sizes(), vec![10, 10, 10, 10]);
        assert_eq!(cluster.shard_of(25), 2);
    }

    #[test]
    fn synthetic_sweep_latency_increases_with_fanout() {
        let (_, good, _) = graph_and_partitions();
        let cluster = ShardedCluster::from_partition(&good, LatencyModel::default());
        let report = cluster.synthetic_fanout_sweep(4, 3_000, 5);
        assert_eq!(report.by_fanout.len(), 4);
        let means: Vec<f64> = report.by_fanout.iter().map(|(_, s)| s.mean).collect();
        for w in means.windows(2) {
            assert!(
                w[1] > w[0] * 0.99,
                "latency should be (weakly) increasing: {means:?}"
            );
        }
        assert!(means[3] > means[0] * 1.2);
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let (graph, good, _) = graph_and_partitions();
        let cluster = ShardedCluster::from_partition(&good, LatencyModel::default());
        let a = cluster.replay(&graph, 2, 9);
        let b = cluster.replay(&graph, 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_replay_is_empty() {
        let graph = GraphBuilder::new().build().unwrap();
        let p = Partition::new_uniform(&graph, 2).unwrap();
        let cluster = ShardedCluster::from_partition(&p, LatencyModel::default());
        let report = cluster.replay(&graph, 1, 1);
        assert_eq!(report.overall.count, 0);
        assert_eq!(report.average_fanout, 0.0);
    }
}
