//! Per-request latency model and percentile summaries.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A heavy-tailed per-request latency distribution.
///
/// Requests are modeled as a log-normal body with an occasional slow outlier (queueing,
/// GC pause, packet loss); the parameters are normalized so that the mean of a single request
/// is `mean_t` (the paper reports latencies in units of `t`, the average latency of a single
/// call). The maximum of `f` independent draws grows with `f`, which is exactly the
/// fanout-latency dependency of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Mean latency of a single request (the unit `t` of Figure 4).
    pub mean_t: f64,
    /// Coefficient of variation of the log-normal body.
    pub body_cv: f64,
    /// Probability that a request is an outlier.
    pub outlier_probability: f64,
    /// Multiplier applied to the mean for outlier requests.
    pub outlier_multiplier: f64,
    /// Additional per-record serialization cost: a request for `r` records costs
    /// `r * per_record_cost` extra (used to study the "request size" caveat of Section 5).
    pub per_record_cost: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            mean_t: 1.0,
            body_cv: 0.4,
            outlier_probability: 0.03,
            outlier_multiplier: 8.0,
            per_record_cost: 0.0,
        }
    }
}

impl LatencyModel {
    /// Samples the latency of one request fetching `records` records.
    pub fn sample_request<R: Rng>(&self, rng: &mut R, records: usize) -> f64 {
        // Log-normal with mean 1 and the configured coefficient of variation, scaled to mean_t.
        let sigma2 = (1.0 + self.body_cv * self.body_cv).ln();
        let sigma = sigma2.sqrt();
        let mu = -sigma2 / 2.0;
        let z: f64 = standard_normal(rng);
        let mut latency = self.mean_t * (mu + sigma * z).exp();
        if rng.gen_bool(self.outlier_probability.clamp(0.0, 1.0)) {
            latency *= self.outlier_multiplier;
        }
        latency + self.per_record_cost * records as f64
    }

    /// Samples the latency of a multi-get query contacting `fanout` servers in parallel, with
    /// `records_per_server[i]` records fetched from server `i`: the maximum over the parallel
    /// requests.
    pub fn sample_query<R: Rng>(&self, rng: &mut R, records_per_server: &[usize]) -> f64 {
        records_per_server
            .iter()
            .map(|&r| self.sample_request(rng, r))
            .fold(0.0, f64::max)
    }
}

/// Draws a standard normal variate via the Box–Muller transform.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Percentile summary of a latency sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl LatencySummary {
    /// Computes the summary of a latency sample. Returns an all-zero summary for an empty
    /// sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |q: f64| -> f64 {
            let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
            sorted[idx]
        };
        LatencySummary {
            count: samples.len(),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn single_request_mean_is_close_to_t() {
        let model = LatencyModel {
            outlier_probability: 0.0,
            ..Default::default()
        };
        let mut rng = Pcg64::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| model.sample_request(&mut rng, 1))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn query_latency_grows_with_fanout() {
        let model = LatencyModel::default();
        let mut rng = Pcg64::seed_from_u64(2);
        let mean_for = |fanout: usize, rng: &mut Pcg64| {
            let records = vec![1usize; fanout];
            (0..5_000)
                .map(|_| model.sample_query(rng, &records))
                .sum::<f64>()
                / 5_000.0
        };
        let f1 = mean_for(1, &mut rng);
        let f10 = mean_for(10, &mut rng);
        let f40 = mean_for(40, &mut rng);
        assert!(
            f10 > f1 * 1.3,
            "fanout 10 ({f10}) should be well above fanout 1 ({f1})"
        );
        assert!(
            f40 > f10 * 1.2,
            "fanout 40 ({f40}) should be above fanout 10 ({f10})"
        );
    }

    #[test]
    fn per_record_cost_penalizes_skewed_requests() {
        let model = LatencyModel {
            per_record_cost: 0.01,
            outlier_probability: 0.0,
            ..Default::default()
        };
        let mut rng = Pcg64::seed_from_u64(3);
        let even: f64 = (0..5_000)
            .map(|_| model.sample_query(&mut rng, &[50, 50]))
            .sum::<f64>()
            / 5_000.0;
        let skewed: f64 = (0..5_000)
            .map(|_| model.sample_query(&mut rng, &[99, 1]))
            .sum::<f64>()
            / 5_000.0;
        assert!(skewed > even, "skewed {skewed} should exceed even {even}");
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let samples: Vec<f64> = (1..=1000).map(|x| x as f64).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 1000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert!((s.p50 - 500.0).abs() <= 1.0);
        let empty = LatencySummary::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
    }
}
