//! # shp-sharding-sim
//!
//! A storage-sharding simulator used to reproduce the fanout-vs-latency experiments of
//! Section 4.2.1 of the SHP paper (Figure 4a/4b).
//!
//! The paper's argument for fanout as the sharding objective: a multi-get query issues its
//! per-server requests in parallel, so its latency is the *maximum* of the individual request
//! latencies; the more servers are contacted (the higher the fanout), the higher the chance of
//! hitting a slow request ("the tail at scale"). The simulator models exactly that mechanism:
//!
//! * [`latency`] — a heavy-tailed per-request latency distribution normalized so that a single
//!   request has mean latency `t`, plus percentile bookkeeping.
//! * [`cluster`] — a cluster of key-value shards holding the data vertices of a bipartite
//!   graph according to a [`shp_hypergraph::Partition`]; queries are replayed against it and
//!   their fanout and latency recorded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod latency;

pub use cluster::{QueryObservation, ReplayReport, ShardedCluster};
pub use latency::{LatencyModel, LatencySummary};
