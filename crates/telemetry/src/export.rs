//! Snapshot exporters: Prometheus text exposition ([`to_prometheus`]) and a self-describing
//! JSON document ([`to_json`] / [`from_json`]).
//!
//! Both are hand-rolled — the workspace carries no serialization dependency — and both are
//! deterministic: a [`Snapshot`] renders to byte-identical output however it was produced,
//! because snapshots hold ordered maps and `f64` values render through Rust's shortest
//! round-tripping formatter.
//!
//! ## Prometheus mapping
//!
//! * counters → `<name>_total` with `# HELP`/`# TYPE` headers;
//! * gauges → `<name>`;
//! * histograms → classic `<name>_bucket{le="..."}` cumulative series (sparse: only occupied
//!   edges, always ending in `le="+Inf"`), plus `<name>_sum` and `<name>_count`;
//! * spans → `shp_span_seconds_total` / `shp_span_count_total` / `shp_span_seconds_max`
//!   labelled `{span="<path>"}`;
//! * top keys → `shp_hot_key_hits{sketch="<name>",key="<id>"}`.
//!
//! Metric names are sanitized to `[a-zA-Z0-9_:]` and label values are escaped per the
//! exposition-format rules (`\\`, `\"`, `\n`).
//!
//! ## JSON mapping
//!
//! One top-level object with `version`, `counters`, `gauges`, `histograms`, `spans`, and
//! `top_keys` members. Bucket edges may be `f64::INFINITY`, which JSON cannot carry as a
//! number, so edges serialize as the string `"inf"` in that case. [`from_json`] accepts
//! exactly what [`to_json`] produces (field order is not significant; unknown fields are
//! rejected so schema drift is caught loudly).

use crate::registry::{HistogramSnapshot, Snapshot, SpanSnapshot, TopKeysSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_` (and prefixes `_` if the name
/// would start with a digit), yielding a valid Prometheus metric name.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double quote, newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Renders an `f64` for the exposition format (`+Inf` for infinity).
fn format_value(value: f64) -> String {
    if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Renders `snapshot` in the Prometheus text exposition format (see the module docs).
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let base = sanitize_name(name);
        let full = if base.ends_with("_total") {
            base
        } else {
            format!("{base}_total")
        };
        let _ = writeln!(out, "# HELP {full} Counter {name}");
        let _ = writeln!(out, "# TYPE {full} counter");
        let _ = writeln!(out, "{full} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let full = sanitize_name(name);
        let _ = writeln!(out, "# HELP {full} Gauge {name}");
        let _ = writeln!(out, "# TYPE {full} gauge");
        let _ = writeln!(out, "{full} {}", format_value(*value));
    }
    for (name, h) in &snapshot.histograms {
        let full = sanitize_name(name);
        let _ = writeln!(out, "# HELP {full} Histogram {name}");
        let _ = writeln!(out, "# TYPE {full} histogram");
        for &(edge, cumulative) in &h.buckets {
            let _ = writeln!(
                out,
                "{full}_bucket{{le=\"{}\"}} {cumulative}",
                format_value(edge)
            );
        }
        if h.buckets.is_empty() {
            let _ = writeln!(out, "{full}_bucket{{le=\"+Inf\"}} 0");
        }
        let _ = writeln!(out, "{full}_sum {}", format_value(h.sum));
        let _ = writeln!(out, "{full}_count {}", h.count);
    }
    if !snapshot.spans.is_empty() {
        let _ = writeln!(
            out,
            "# HELP shp_span_count_total Completed spans per phase path"
        );
        let _ = writeln!(out, "# TYPE shp_span_count_total counter");
        for (path, s) in &snapshot.spans {
            let _ = writeln!(
                out,
                "shp_span_count_total{{span=\"{}\"}} {}",
                escape_label(path),
                s.count
            );
        }
        let _ = writeln!(
            out,
            "# HELP shp_span_seconds_total Wall seconds per phase path"
        );
        let _ = writeln!(out, "# TYPE shp_span_seconds_total counter");
        for (path, s) in &snapshot.spans {
            let _ = writeln!(
                out,
                "shp_span_seconds_total{{span=\"{}\"}} {}",
                escape_label(path),
                format_value(s.total_ns as f64 / 1e9)
            );
        }
        let _ = writeln!(
            out,
            "# HELP shp_span_seconds_max Longest single span per phase path"
        );
        let _ = writeln!(out, "# TYPE shp_span_seconds_max gauge");
        for (path, s) in &snapshot.spans {
            let _ = writeln!(
                out,
                "shp_span_seconds_max{{span=\"{}\"}} {}",
                escape_label(path),
                format_value(s.max_ns as f64 / 1e9)
            );
        }
    }
    if !snapshot.top_keys.is_empty() {
        let _ = writeln!(
            out,
            "# HELP shp_hot_key_hits Approximate hits for the hottest keys"
        );
        let _ = writeln!(out, "# TYPE shp_hot_key_hits gauge");
        for (name, keys) in &snapshot.top_keys {
            for &(key, count) in &keys.entries {
                let _ = writeln!(
                    out,
                    "shp_hot_key_hits{{sketch=\"{}\",key=\"{key}\"}} {count}",
                    escape_label(name)
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: the string `"inf"` for infinity, else a number via
/// Rust's shortest round-tripping formatter.
fn json_number(value: f64) -> String {
    if value == f64::INFINITY {
        "\"inf\"".to_string()
    } else {
        format!("{value}")
    }
}

fn render_map<T>(
    out: &mut String,
    indent: &str,
    map: &BTreeMap<String, T>,
    mut render: impl FnMut(&mut String, &T),
) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, (name, value)) in map.iter().enumerate() {
        let _ = write!(out, "{indent}  \"{}\": ", json_escape(name));
        render(out, value);
        out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
    }
    let _ = write!(out, "{indent}}}");
}

/// Renders `snapshot` as a pretty-printed JSON document (see the module docs for the schema).
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {},", snapshot.version);

    out.push_str("  \"counters\": ");
    render_map(&mut out, "  ", &snapshot.counters, |out, v| {
        let _ = write!(out, "{v}");
    });
    out.push_str(",\n  \"gauges\": ");
    render_map(&mut out, "  ", &snapshot.gauges, |out, v| {
        out.push_str(&json_number(*v));
    });
    out.push_str(",\n  \"histograms\": ");
    render_map(&mut out, "  ", &snapshot.histograms, |out, h| {
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
            h.count,
            json_number(h.sum),
            json_number(h.min),
            json_number(h.max)
        );
        for (i, &(edge, cumulative)) in h.buckets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{}, {cumulative}]", json_number(edge));
        }
        out.push_str("]}");
    });
    out.push_str(",\n  \"spans\": ");
    render_map(&mut out, "  ", &snapshot.spans, |out, s| {
        let _ = write!(
            out,
            "{{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
            s.count, s.total_ns, s.max_ns
        );
    });
    out.push_str(",\n  \"top_keys\": ");
    render_map(&mut out, "  ", &snapshot.top_keys, |out, keys| {
        out.push('[');
        for (i, &(key, count)) in keys.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{key}, {count}]");
        }
        out.push(']');
    });
    out.push_str("\n}\n");
    out
}

// ---------------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------------

/// A parsed JSON value; numbers keep their raw text so integers round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(String),
    Bool(bool),
    Null,
}

impl Json {
    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::Number(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("expected unsigned integer, got {raw:?}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// An `f64`, accepting the `"inf"` string sentinel used for bucket edges.
    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Json::Number(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("expected number, got {raw:?}")),
            Json::String(s) if s == "inf" => Ok(f64::INFINITY),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn as_object(&self) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(members) => Ok(members),
            other => Err(format!("expected object, got {other:?}")),
        }
    }

    fn as_array(&self) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("JSON parse error at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in number"))?;
        if raw.is_empty() || raw.parse::<f64>().is_err() {
            return Err(self.error(&format!("malformed number {raw:?}")));
        }
        Ok(Json::Number(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("malformed \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            members.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }
}

fn parse_document(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content after document"));
    }
    Ok(value)
}

fn histogram_from_json(value: &Json) -> Result<HistogramSnapshot, String> {
    let mut snap = HistogramSnapshot {
        count: 0,
        sum: 0.0,
        min: 0.0,
        max: 0.0,
        buckets: Vec::new(),
    };
    for (key, member) in value.as_object()? {
        match key.as_str() {
            "count" => snap.count = member.as_u64()?,
            "sum" => snap.sum = member.as_f64()?,
            "min" => snap.min = member.as_f64()?,
            "max" => snap.max = member.as_f64()?,
            "buckets" => {
                for pair in member.as_array()? {
                    let pair = pair.as_array()?;
                    if pair.len() != 2 {
                        return Err("histogram bucket must be [edge, cumulative]".to_string());
                    }
                    snap.buckets.push((pair[0].as_f64()?, pair[1].as_u64()?));
                }
            }
            other => return Err(format!("unknown histogram field {other:?}")),
        }
    }
    Ok(snap)
}

fn span_from_json(value: &Json) -> Result<SpanSnapshot, String> {
    let mut snap = SpanSnapshot {
        count: 0,
        total_ns: 0,
        max_ns: 0,
    };
    for (key, member) in value.as_object()? {
        match key.as_str() {
            "count" => snap.count = member.as_u64()?,
            "total_ns" => snap.total_ns = member.as_u64()?,
            "max_ns" => snap.max_ns = member.as_u64()?,
            other => return Err(format!("unknown span field {other:?}")),
        }
    }
    Ok(snap)
}

fn top_keys_from_json(value: &Json) -> Result<TopKeysSnapshot, String> {
    let mut snap = TopKeysSnapshot::default();
    for pair in value.as_array()? {
        let pair = pair.as_array()?;
        if pair.len() != 2 {
            return Err("top-key entry must be [key, count]".to_string());
        }
        let key =
            u32::try_from(pair[0].as_u64()?).map_err(|_| "top-key id exceeds u32".to_string())?;
        snap.entries.push((key, pair[1].as_u64()?));
    }
    Ok(snap)
}

fn string_map<T>(
    value: &Json,
    mut convert: impl FnMut(&Json) -> Result<T, String>,
) -> Result<BTreeMap<String, T>, String> {
    let mut out = BTreeMap::new();
    for (key, member) in value.as_object()? {
        out.insert(key.clone(), convert(member)?);
    }
    Ok(out)
}

/// Parses a snapshot previously rendered by [`to_json`]. Unknown fields are an error.
pub fn from_json(text: &str) -> Result<Snapshot, String> {
    let document = parse_document(text)?;
    let mut snapshot = Snapshot::new();
    for (key, member) in document.as_object()? {
        match key.as_str() {
            "version" => snapshot.version = member.as_u64()?,
            "counters" => snapshot.counters = string_map(member, Json::as_u64)?,
            "gauges" => snapshot.gauges = string_map(member, Json::as_f64)?,
            "histograms" => snapshot.histograms = string_map(member, histogram_from_json)?,
            "spans" => snapshot.spans = string_map(member, span_from_json)?,
            "top_keys" => snapshot.top_keys = string_map(member, top_keys_from_json)?,
            other => return Err(format!("unknown snapshot field {other:?}")),
        }
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let registry = crate::Registry::new();
        registry.counter("serving/queries").add(42);
        registry.counter("ingest/bytes").add(1_000_000);
        registry.gauge("serving/shard_skew").set(1.25);
        let h = registry.histogram("serving/latency_ms");
        for v in [0.5, 1.0, 1.0, 8.0, 64.0] {
            h.record(v);
        }
        registry
            .span_stats("partition/refinement")
            .record_ns(2_000_000);
        registry
            .span_stats("partition/refinement/iteration")
            .record_ns(900_000);
        let sketch = registry.sketch("serving/hot_keys", 64);
        for _ in 0..9 {
            sketch.record(7);
        }
        sketch.record(3);
        registry.snapshot()
    }

    #[test]
    fn json_round_trips_exactly() {
        let snapshot = sample();
        let rendered = to_json(&snapshot);
        let parsed = from_json(&rendered).expect("parse back");
        assert_eq!(parsed, snapshot);
        // And rendering the parsed copy is byte-identical.
        assert_eq!(to_json(&parsed), rendered);
    }

    #[test]
    fn json_rejects_unknown_fields_and_garbage() {
        assert!(from_json("{\"bogus\": 1}").is_err());
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"version\": 1} trailing").is_err());
        assert!(from_json("{\"counters\": {\"x\": -1}}").is_err());
    }

    #[test]
    fn json_carries_infinite_bucket_edges() {
        let snapshot = sample();
        let rendered = to_json(&snapshot);
        assert!(rendered.contains("\"inf\""));
        let parsed = from_json(&rendered).unwrap();
        let buckets = &parsed.histograms["serving/latency_ms"].buckets;
        assert_eq!(buckets.last().unwrap().0, f64::INFINITY);
    }

    #[test]
    fn json_escapes_awkward_names() {
        let mut snapshot = Snapshot::new();
        snapshot
            .counters
            .insert("weird \"name\"\\with\nstuff".to_string(), 5);
        let parsed = from_json(&to_json(&snapshot)).unwrap();
        assert_eq!(parsed.counters["weird \"name\"\\with\nstuff"], 5);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE serving_queries_total counter"));
        assert!(text.contains("serving_queries_total 42"));
        assert!(text.contains("# TYPE serving_shard_skew gauge"));
        assert!(text.contains("serving_shard_skew 1.25"));
        assert!(text.contains("# TYPE serving_latency_ms histogram"));
        assert!(text.contains("serving_latency_ms_count 5"));
        assert!(text.contains("le=\"+Inf\"} 5"));
        assert!(text.contains("shp_span_count_total{span=\"partition/refinement\"} 1"));
        assert!(text.contains("shp_hot_key_hits{sketch=\"serving/hot_keys\",key=\"7\"} 9"));
    }

    #[test]
    fn sanitize_and_escape_rules() {
        assert_eq!(sanitize_name("serving/latency-ms"), "serving_latency_ms");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn empty_snapshot_renders_and_parses() {
        let empty = Snapshot::new();
        let parsed = from_json(&to_json(&empty)).unwrap();
        assert_eq!(parsed, empty);
        assert_eq!(to_prometheus(&empty), "");
    }
}
