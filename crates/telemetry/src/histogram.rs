//! The fixed-bucket log-linear [`Histogram`] over non-negative `f64` values.
//!
//! ## Bucket layout
//!
//! Every power-of-two octave in `[2^-16, 2^16)` is split into `2^SUB_BITS = 64` equal-width
//! sub-buckets, mapped straight off the IEEE-754 bit pattern (`bits >> (52 - SUB_BITS)` is
//! monotone for positive floats). Two sentinel buckets catch the rest of the axis: bucket 0
//! holds everything below `2^-16` (including `0.0`, NaN, and negatives), and the final bucket
//! holds everything at or above `2^16`. The bucket count is a compile-time constant —
//! recording never allocates and memory never grows with traffic.
//!
//! ## Quantization contract
//!
//! [`Histogram::quantile`] returns the **lower edge** of the bucket containing the requested
//! rank, so for any tracked value `quantile(q) ≤ v ≤ quantile(q) · (1 + 2^-6)`: the relative
//! quantization error is at most `2^-6 ≈ 1.56%`. A value that is exactly representable with
//! 6 mantissa bits (every small integer up to 128, every bucket edge) sits *on* its bucket's
//! lower edge and is reported exactly.
//!
//! ## Determinism under concurrency
//!
//! Bucket counts are order-independent by construction. The running sum is kept in fixed
//! point ([`SUM_SCALE`] units of `2^-14`) so addition is associative and a merged report is
//! bit-identical regardless of how recording threads interleaved — unlike a floating-point
//! accumulator, whose low bits would depend on arrival order.

use crate::{shard_index, HISTOGRAM_SHARDS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear buckets.
pub const SUB_BITS: u32 = 6;

/// Upper bound of the relative quantization error of [`Histogram::quantile`]: `2^-SUB_BITS`.
pub const QUANTIZATION_ERROR: f64 = 1.0 / (1 << SUB_BITS) as f64;

/// Smallest tracked exponent: values below `2^MIN_EXP` land in the underflow bucket.
const MIN_EXP: i32 = -16;
/// One past the largest tracked exponent: values at or above `2^MAX_EXP` clamp to the top.
const MAX_EXP: i32 = 16;

/// Fixed-point scale of the sum accumulator (`2^14` units per 1.0).
pub const SUM_SCALE: f64 = (1u64 << 14) as f64;

const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;
const BUCKETS: usize = OCTAVES * (1 << SUB_BITS) + 2;
const MANTISSA_SHIFT: u32 = 52 - SUB_BITS;
/// `(2^MIN_EXP).to_bits() >> MANTISSA_SHIFT`, the key of the first tracked bucket.
const BASE_KEY: u64 = ((1023 + MIN_EXP) as u64) << SUB_BITS;
const MAX_TRACKED: f64 = 65536.0; // 2^MAX_EXP

struct HistogramShard {
    buckets: Box<[AtomicU64]>,
    /// Fixed-point sum of recorded values ([`SUM_SCALE`] units).
    sum_fp: AtomicU64,
}

impl HistogramShard {
    fn new() -> Self {
        HistogramShard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_fp: AtomicU64::new(0),
        }
    }
}

/// A sharded, lock-free, constant-memory log-linear histogram (see the module docs).
pub struct Histogram {
    shards: Box<[HistogramShard]>,
    /// Bit pattern of the smallest recorded value (`f64::INFINITY` when empty).
    min_bits: AtomicU64,
    /// Bit pattern of the largest recorded value (`0.0` when empty).
    max_bits: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index of `value` (total order: underflow, tracked octaves, overflow).
#[inline]
fn bucket_of(value: f64) -> usize {
    const MIN_TRACKED: f64 = 1.0 / 65536.0; // 2^MIN_EXP
    if value.is_nan() || value < MIN_TRACKED {
        // Below range, zero, negative, or NaN: the underflow bucket.
        return 0;
    }
    if value >= MAX_TRACKED {
        return BUCKETS - 1;
    }
    ((value.to_bits() >> MANTISSA_SHIFT) - BASE_KEY) as usize + 1
}

/// The lower edge of bucket `index` (`0.0` for the underflow bucket, `2^MAX_EXP` for the
/// overflow bucket).
#[inline]
fn lower_edge(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    if index >= BUCKETS - 1 {
        return MAX_TRACKED;
    }
    f64::from_bits((BASE_KEY + index as u64 - 1) << MANTISSA_SHIFT)
}

/// The exclusive upper edge of bucket `index` (`f64::INFINITY` for the overflow bucket).
#[inline]
fn upper_edge(index: usize) -> f64 {
    if index >= BUCKETS - 1 {
        return f64::INFINITY;
    }
    lower_edge(index + 1)
}

impl Histogram {
    /// Creates an empty histogram (all memory allocated up front).
    pub fn new() -> Self {
        Histogram {
            shards: (0..HISTOGRAM_SHARDS)
                .map(|_| HistogramShard::new())
                .collect(),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation. Lock-free: two relaxed `fetch_add`s on the calling thread's
    /// shard plus two relaxed `fetch_min`/`fetch_max` (no allocation, no CAS loop).
    #[inline]
    pub fn record(&self, value: f64) {
        let shard = &self.shards[shard_index(HISTOGRAM_SHARDS)];
        shard.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        let clamped = if value.is_nan() {
            0.0
        } else {
            value.clamp(0.0, MAX_TRACKED)
        };
        shard
            .sum_fp
            .fetch_add((clamped * SUM_SCALE).round() as u64, Ordering::Relaxed);
        // For non-negative floats the IEEE-754 bit pattern orders like the value, so the
        // min/max of the bit patterns are the bit patterns of the min/max.
        let bits = clamped.to_bits();
        self.min_bits.fetch_min(bits, Ordering::Relaxed);
        self.max_bits.fetch_max(bits, Ordering::Relaxed);
    }

    /// Total number of recorded observations (scrape-time merge).
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.buckets.iter())
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of recorded values, quantized to [`SUM_SCALE`] fixed point (order-independent).
    pub fn sum(&self) -> f64 {
        let fp: u64 = self
            .shards
            .iter()
            .map(|s| s.sum_fp.load(Ordering::Relaxed))
            .sum();
        fp as f64 / SUM_SCALE
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() / count as f64
        }
    }

    /// Smallest recorded value (clamped into the tracked range; `0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Largest recorded value (clamped into the tracked range; `0.0` when empty).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// The merged dense bucket counts (scrape-time only).
    fn merged(&self) -> Vec<u64> {
        let mut out = vec![0u64; BUCKETS];
        for shard in self.shards.iter() {
            for (bucket, total) in shard.buckets.iter().zip(out.iter_mut()) {
                *total += bucket.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) under the quantization contract of the module docs:
    /// the lower edge of the bucket holding rank `round(q · (count − 1))`. Returns `0.0` when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        Self::quantile_of(&self.merged(), q)
    }

    /// Several quantiles in one merge pass over the shards.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        let merged = self.merged();
        qs.iter().map(|&q| Self::quantile_of(&merged, q)).collect()
    }

    fn quantile_of(merged: &[u64], q: f64) -> f64 {
        let count: u64 = merged.iter().sum();
        if count == 0 {
            return 0.0;
        }
        // Same rank definition as a sorted-vector percentile `sorted[round(q * (n - 1))]`.
        let rank = (q.clamp(0.0, 1.0) * (count - 1) as f64).round() as u64;
        let mut cumulative = 0u64;
        for (index, &c) in merged.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return lower_edge(index);
            }
        }
        MAX_TRACKED
    }

    /// `(exclusive upper edge, cumulative count)` for every non-empty bucket, in ascending
    /// order — the Prometheus classic-histogram shape. The final entry's edge is
    /// `f64::INFINITY` whenever anything was recorded.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let merged = self.merged();
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, &c) in merged.iter().enumerate() {
            if c > 0 {
                cumulative += c;
                out.push((upper_edge(index), cumulative));
            }
        }
        if let Some(last) = out.last_mut() {
            // The top occupied bucket reports as +Inf so the exposition always ends with the
            // mandatory `le="+Inf"` bucket equal to the total count.
            if last.0 != f64::INFINITY {
                out.push((f64::INFINITY, cumulative));
            }
        }
        out
    }

    /// Zeroes every bucket, the sums, and the min/max.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            for bucket in shard.buckets.iter() {
                bucket.store(0, Ordering::Relaxed);
            }
            shard.sum_fp.store(0, Ordering::Relaxed);
        }
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }

    /// Bytes of bucket storage held (constant for the lifetime of the histogram).
    pub fn memory_bytes(&self) -> usize {
        self.shards.len() * (BUCKETS + 1) * std::mem::size_of::<AtomicU64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_on_bucket_edges_are_reported_exactly() {
        let h = Histogram::new();
        for v in [1.0, 3.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn quantile_error_is_within_the_documented_bound() {
        let h = Histogram::new();
        let mut values: Vec<f64> = (1..=10_000).map(|i| (i as f64).sqrt() * 0.37).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact =
                values[((q * (values.len() - 1) as f64).round() as usize).min(values.len() - 1)];
            let approx = h.quantile(q);
            assert!(
                approx <= exact + 1e-12 && exact <= approx * (1.0 + QUANTIZATION_ERROR) + 1e-12,
                "q={q}: exact {exact} approx {approx}"
            );
        }
    }

    #[test]
    fn out_of_range_values_clamp_into_sentinel_buckets() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(1e-9);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(1e12);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 6);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 65536.0);
        assert_eq!(h.max(), 65536.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_inf() {
        let h = Histogram::new();
        for i in 0..1000 {
            h.record(i as f64 * 0.013);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "edges ascend");
            assert!(pair[0].1 <= pair[1].1, "cumulative counts ascend");
        }
        let last = buckets.last().unwrap();
        assert_eq!(last.0, f64::INFINITY);
        assert_eq!(last.1, 1000);
    }

    #[test]
    fn sum_is_order_independent_across_threads() {
        let sequential = Histogram::new();
        for i in 0..4000u32 {
            sequential.record(i as f64 * 0.21);
        }
        let concurrent = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let h = &concurrent;
                scope.spawn(move || {
                    for i in (t..4000).step_by(4) {
                        h.record(i as f64 * 0.21);
                    }
                });
            }
        });
        assert_eq!(sequential.count(), concurrent.count());
        assert_eq!(sequential.sum().to_bits(), concurrent.sum().to_bits());
        assert_eq!(
            sequential.quantile(0.99).to_bits(),
            concurrent.quantile(0.99).to_bits()
        );
    }

    #[test]
    fn memory_is_constant_under_load() {
        let h = Histogram::new();
        let before = h.memory_bytes();
        for i in 0..200_000 {
            h.record((i % 977) as f64 * 0.01);
        }
        assert_eq!(h.memory_bytes(), before);
        assert_eq!(h.count(), 200_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.memory_bytes(), before);
    }

    #[test]
    fn quantiles_batch_matches_single_calls() {
        let h = Histogram::new();
        for i in 1..=500 {
            h.record(i as f64);
        }
        let batch = h.quantiles(&[0.5, 0.9, 0.99]);
        assert_eq!(batch[0], h.quantile(0.5));
        assert_eq!(batch[1], h.quantile(0.9));
        assert_eq!(batch[2], h.quantile(0.99));
        assert!(batch[0] <= batch[1] && batch[1] <= batch[2]);
    }
}
