//! # shp-telemetry
//!
//! Zero-dependency, lock-free-on-record telemetry for the SHP workspace: the
//! serve→observe→repartition loop of the paper (Kabiljo et al., VLDB 2017, Section 5) starts
//! with *observation*, and this crate is the observation layer — cheap enough to stay on in
//! the serving hot path, structured enough to drive a future repartition controller.
//!
//! ## Components
//!
//! * [`Counter`] / [`Gauge`] — sharded atomic scalars. A counter spreads increments over
//!   cache-line-padded per-worker shards that are merged only at scrape time, so concurrent
//!   `inc()` calls never contend on one cache line.
//! * [`IndexedCounter`] — a fixed-capacity array of atomic counters (fanout histograms,
//!   per-shard request counts). Bounded by construction: indices past the capacity clamp into
//!   the final overflow slot, so memory never grows with traffic.
//! * [`Histogram`] — a fixed-bucket **log-linear** histogram over non-negative `f64` values
//!   (latencies). See the quantization-error contract below.
//! * [`Span`] / [`Timer`] — hierarchical phase spans (`Span::enter("refinement")` →
//!   `span.child("iteration")`) aggregating wall time per path, and pre-resolved [`Timer`]
//!   handles for hot paths that cannot afford the per-enter path lookup.
//! * [`TopKSketch`] — a bounded space-saving-style per-key frequency sketch (the per-key
//!   access trace a repartition controller consumes), lock-free and with deterministic
//!   tie-breaking at extraction.
//! * [`Registry`] / [`Snapshot`] — named-metric registration and a mergeable point-in-time
//!   snapshot, exported as Prometheus text exposition ([`Snapshot::to_prometheus`]) or a JSON
//!   document ([`Snapshot::to_json`] / [`Snapshot::from_json`]).
//!
//! ## The lock-free record path
//!
//! Every *record* operation — `Counter::inc`, `Gauge::set`, `IndexedCounter::inc`,
//! `Histogram::record`, `TopKSketch::record`, and the span/timer close that folds a duration
//! into its [`SpanStats`] — performs only atomic loads, stores, `fetch_*`, and bounded CAS
//! retries on pre-allocated memory: no `Mutex`, no `RwLock`, no allocation. The only locking
//! in the crate sits on the *registration* path ([`Registry::counter`] and friends intern
//! names under a lock the first time they are seen) and on the *scrape* path
//! ([`Registry::snapshot`]); both are off the hot path by construction. [`Span::enter`] reads
//! the intern table through a shared read lock once per span — fine at phase granularity; the
//! per-multiget serving paths use cached [`Timer`] handles instead, which record without
//! touching any map.
//!
//! ## Quantization error
//!
//! [`Histogram`] buckets are log-linear: each power-of-two octave in `[2^-16, 2^16)` is split
//! into `2^6 = 64` equal-width sub-buckets, so every bucket spans a relative width of
//! `2^-6 ≈ 1.56%`. [`Histogram::quantile`] returns the **lower edge** of the bucket holding
//! the requested rank, hence `quantile(q) ≤ true_value ≤ quantile(q) · (1 + 2^-6)` for values
//! inside the tracked range (values below `2^-16` report `0.0`; values at or above `2^16`
//! clamp to `65536.0`). Sums are accumulated in fixed-point (`2^-14` resolution) so the mean
//! is independent of record interleaving — a merged report is bit-identical no matter how
//! threads raced.
//!
//! ## Disabled modes
//!
//! Telemetry can be disabled two ways, and **neither changes any computed result** — the
//! instrumented algorithms never read telemetry state, so partitioning outcomes and serving
//! results are bit-identical with telemetry on, off, or compiled out (the workspace's
//! `parallel_conformance` suite proves this):
//!
//! * Runtime: [`set_enabled`]`(false)` makes every record path return after one relaxed
//!   atomic load, and spans skip even the `Instant::now()` call.
//! * Compile time: the `noop` cargo feature turns [`enabled`] into a literal `false`, so the
//!   optimizer removes the instrumentation entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod registry;
pub mod scalar;
pub mod sketch;
pub mod span;

pub use histogram::Histogram;
pub use registry::{
    HistogramSnapshot, Registry, Snapshot, SpanSnapshot, TopKeysSnapshot, SNAPSHOT_VERSION,
};
pub use scalar::{Counter, Gauge, IndexedCounter};
pub use sketch::TopKSketch;
pub use span::{Span, SpanStats, Timer, TimerGuard};

#[cfg(not(feature = "noop"))]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of per-worker shards a [`Counter`] spreads increments over (a power of two).
pub const COUNTER_SHARDS: usize = 16;

/// Number of per-worker shards a [`Histogram`] and an [`IndexedCounter`] use. Smaller than
/// [`COUNTER_SHARDS`] because each shard carries a full bucket array.
pub const HISTOGRAM_SHARDS: usize = 4;

#[cfg(not(feature = "noop"))]
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry recording is currently on.
///
/// With the `noop` cargo feature this is a `const fn` returning `false`, so every record path
/// guarded by it is removed at compile time.
#[cfg(not(feature = "noop"))]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Compile-time disabled mode: recording is permanently off and the optimizer deletes the
/// record paths.
#[cfg(feature = "noop")]
#[inline]
pub const fn enabled() -> bool {
    false
}

/// Turns runtime recording on or off process-wide.
///
/// Disabling does not clear anything already recorded; it only makes subsequent record calls
/// no-ops. A no-op under the `noop` feature (recording is compiled out there).
pub fn set_enabled(on: bool) {
    #[cfg(not(feature = "noop"))]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(feature = "noop")]
    let _ = on;
}

/// The process-wide registry the instrumentation in the SHP crates records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A cache-line-padded cell, so neighboring shards of one sharded metric never share a line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct Pad<T>(pub T);

/// The calling thread's stable shard index in `0..shards` (`shards` must be a power of two).
///
/// Thread ids are assigned from a process-wide counter on first use, so the first N distinct
/// recording threads land on N distinct shards — per-worker sharding without any coordination
/// on the record path.
#[inline]
pub(crate) fn shard_index(shards: usize) -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    THREAD_SHARD.with(|&id| id & (shards - 1))
}

/// Serializes tests that flip the process-wide [`set_enabled`] toggle, so they cannot race
/// with each other under the parallel test runner.
#[cfg(test)]
pub(crate) fn toggle_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_index_is_stable_per_thread_and_in_range() {
        let first = shard_index(COUNTER_SHARDS);
        assert!(first < COUNTER_SHARDS);
        assert_eq!(first, shard_index(COUNTER_SHARDS));
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| shard_index(COUNTER_SHARDS)))
            .collect();
        for h in handles {
            assert!(h.join().unwrap() < COUNTER_SHARDS);
        }
    }

    #[test]
    fn enable_toggle_round_trips() {
        #[cfg(not(feature = "noop"))]
        {
            let _guard = toggle_guard();
            set_enabled(true);
            assert!(enabled());
            set_enabled(false);
            assert!(!enabled());
            set_enabled(true);
            assert!(enabled());
        }
        #[cfg(feature = "noop")]
        assert!(!enabled());
    }
}
