//! Named-metric registration ([`Registry`]) and mergeable point-in-time snapshots
//! ([`Snapshot`]).
//!
//! A registry interns metrics by name: the first `counter("x")` call allocates the counter,
//! later calls return the same `Arc`. Interning takes a lock, but only on the *registration*
//! and *scrape* paths — instrumentation sites resolve their handles once (at construction or
//! first use) and record through lock-free atomics afterwards.
//!
//! [`Registry::snapshot`] freezes everything into a [`Snapshot`]: plain owned data, ordered
//! `BTreeMap`s so every rendering of the same state is byte-identical. Snapshots merge
//! ([`Snapshot::merge`]) and export to Prometheus text or JSON (see [`crate::export`]).

use crate::span::{SpanStats, Timer};
use crate::{Counter, Gauge, Histogram, TopKSketch};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Version stamp embedded in every JSON snapshot, bumped on breaking schema changes.
pub const SNAPSHOT_VERSION: u64 = 1;

/// How many top keys a snapshot captures from each registered [`TopKSketch`].
const SNAPSHOT_TOP_KEYS: usize = 32;

type Table<T> = RwLock<BTreeMap<String, Arc<T>>>;

fn intern<T>(table: &Table<T>, name: &str, make: impl FnOnce() -> T) -> Arc<T> {
    if let Some(existing) = table.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return Arc::clone(existing);
    }
    let mut map = table.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

/// A collection of named metrics (see the module docs).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Table<Counter>,
    gauges: Table<Gauge>,
    histograms: Table<Histogram>,
    spans: Table<SpanStats>,
    sketches: Table<TopKSketch>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name, Counter::new)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name, Gauge::new)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name, Histogram::new)
    }

    /// The span-stats cell for span path `path`, registering it on first use.
    pub fn span_stats(&self, path: &str) -> Arc<SpanStats> {
        intern(&self.spans, path, SpanStats::default)
    }

    /// A pre-resolved [`Timer`] over the span path `path` — resolve once, record lock-free.
    pub fn timer(&self, path: &str) -> Timer {
        Timer::new(self.span_stats(path))
    }

    /// The top-K sketch named `name` with (at least) `capacity` slots, registering it on
    /// first use. The capacity of an already-registered sketch is left unchanged.
    pub fn sketch(&self, name: &str, capacity: usize) -> Arc<TopKSketch> {
        intern(&self.sketches, name, || TopKSketch::new(capacity))
    }

    /// Freezes the current state of every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, c)| (name.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, g)| (name.clone(), g.value()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, h)| (name.clone(), HistogramSnapshot::of(h)))
            .collect();
        let spans = self
            .spans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|(_, s)| s.count() > 0)
            .map(|(path, s)| {
                (
                    path.clone(),
                    SpanSnapshot {
                        count: s.count(),
                        total_ns: s.total_ns(),
                        max_ns: s.max_ns(),
                    },
                )
            })
            .collect();
        let top_keys = self
            .sketches
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    TopKeysSnapshot {
                        entries: s.top(SNAPSHOT_TOP_KEYS),
                    },
                )
            })
            .collect();
        Snapshot {
            version: SNAPSHOT_VERSION,
            counters,
            gauges,
            histograms,
            spans,
            top_keys,
        }
    }

    /// Resets every registered metric in place (registrations survive; values zero).
    pub fn reset(&self) {
        for c in self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
        for s in self
            .spans
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            s.reset();
        }
        for s in self
            .sketches
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            s.reset();
        }
    }
}

/// Frozen state of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Fixed-point-accumulated sum of observations.
    pub sum: f64,
    /// Smallest observation (clamped into the tracked range; `0.0` when empty).
    pub min: f64,
    /// Largest observation (clamped into the tracked range; `0.0` when empty).
    pub max: f64,
    /// `(exclusive upper edge, cumulative count)` per non-empty bucket, ascending, ending
    /// with an `f64::INFINITY` edge whenever `count > 0`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    fn of(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h.cumulative_buckets(),
        }
    }

    /// Mean observation (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile estimated from the cumulative buckets, using the same rank rule as
    /// [`Histogram::quantile`] but reporting the bucket's **upper** edge (the live histogram
    /// reports the lower edge; the snapshot only stores upper edges). The true value lies
    /// within one bucket width — `2^-6` relative — of either estimate.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        for &(edge, cumulative) in &self.buckets {
            if cumulative > rank {
                return edge;
            }
        }
        self.max
    }
}

/// Frozen state of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed spans on this path.
    pub count: u64,
    /// Total wall nanoseconds across them.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

/// Frozen top keys of one [`TopKSketch`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopKeysSnapshot {
    /// `(key, approximate count)`, count-descending, ties by ascending key.
    pub entries: Vec<(u32, u64)>,
}

/// A point-in-time copy of a [`Registry`]'s metrics: plain data, deterministic ordering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates by `/`-joined path (paths with zero completed spans are omitted).
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Top-key lists by sketch name.
    pub top_keys: BTreeMap<String, TopKeysSnapshot>,
}

impl Snapshot {
    /// Creates an empty snapshot at the current schema version.
    pub fn new() -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            ..Snapshot::default()
        }
    }

    /// Folds `other` into `self`: counters and span stats add, gauges take `other`'s value,
    /// histograms merge bucket-by-bucket, top-key lists concatenate-and-resort (count
    /// descending, ties by ascending key).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, theirs) in &other.histograms {
            match self.histograms.get_mut(name) {
                None => {
                    self.histograms.insert(name.clone(), theirs.clone());
                }
                Some(mine) => merge_histograms(mine, theirs),
            }
        }
        for (path, theirs) in &other.spans {
            let mine = self.spans.entry(path.clone()).or_insert(SpanSnapshot {
                count: 0,
                total_ns: 0,
                max_ns: 0,
            });
            mine.count += theirs.count;
            mine.total_ns += theirs.total_ns;
            mine.max_ns = mine.max_ns.max(theirs.max_ns);
        }
        for (name, theirs) in &other.top_keys {
            let mine = self.top_keys.entry(name.clone()).or_default();
            let mut by_key: BTreeMap<u32, u64> = mine.entries.iter().copied().collect();
            for &(key, count) in &theirs.entries {
                *by_key.entry(key).or_insert(0) += count;
            }
            let mut entries: Vec<(u32, u64)> = by_key.into_iter().collect();
            entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            mine.entries = entries;
        }
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.top_keys.is_empty()
    }

    /// Renders the snapshot as Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }

    /// Renders the snapshot as a self-describing JSON document.
    pub fn to_json(&self) -> String {
        crate::export::to_json(self)
    }

    /// Parses a snapshot previously rendered by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        crate::export::from_json(text)
    }
}

/// Merges two cumulative-bucket histograms: de-cumulate each, add per-edge counts, then
/// re-cumulate in ascending edge order (`+Inf` last).
fn merge_histograms(mine: &mut HistogramSnapshot, theirs: &HistogramSnapshot) {
    fn per_bucket(cumulative: &[(f64, u64)]) -> Vec<(f64, u64)> {
        let mut previous = 0u64;
        cumulative
            .iter()
            .map(|&(edge, cum)| {
                let delta = cum - previous;
                previous = cum;
                (edge, delta)
            })
            .collect()
    }
    let mut by_edge: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    for (edge, delta) in per_bucket(&mine.buckets)
        .into_iter()
        .chain(per_bucket(&theirs.buckets))
    {
        // Key by the edge's bit pattern: edges come from one fixed bucket grid, and
        // non-negative f64 bits order the same as the values (with +Inf largest).
        let entry = by_edge.entry(edge.to_bits()).or_insert((edge, 0));
        entry.1 += delta;
    }
    let mut cumulative = 0u64;
    mine.buckets = by_edge
        .into_values()
        .filter(|&(edge, delta)| delta > 0 || edge == f64::INFINITY)
        .map(|(edge, delta)| {
            cumulative += delta;
            (edge, cumulative)
        })
        .collect();
    // min/max are only meaningful for non-empty sides (an empty histogram reports 0.0).
    mine.min = match (mine.count, theirs.count) {
        (0, _) => theirs.min,
        (_, 0) => mine.min,
        _ => mine.min.min(theirs.min),
    };
    mine.count += theirs.count;
    mine.sum += theirs.sum;
    mine.max = mine.max.max(theirs.max);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_instance() {
        let r = Registry::new();
        let a = r.counter("x");
        a.add(5);
        let b = r.counter("x");
        assert_eq!(b.value(), 5);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.counter("y").value(), 0);
    }

    #[test]
    fn snapshot_captures_all_kinds_deterministically() {
        let r = Registry::new();
        r.counter("b_count").add(2);
        r.counter("a_count").add(1);
        r.gauge("skew").set(1.5);
        r.histogram("lat").record(1.0);
        r.histogram("lat").record(4.0);
        r.span_stats("phase/a").record_ns(100);
        r.sketch("hot", 64).record(9);
        r.sketch("hot", 64).record(9);
        let snap = r.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(
            snap.counters.keys().collect::<Vec<_>>(),
            vec!["a_count", "b_count"]
        );
        assert_eq!(snap.gauges["skew"], 1.5);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].sum, 5.0);
        assert_eq!(snap.spans["phase/a"].total_ns, 100);
        assert_eq!(snap.top_keys["hot"].entries, vec![(9, 2)]);
        assert_eq!(snap, r.snapshot());
    }

    #[test]
    fn snapshot_quantile_matches_live_histogram_within_one_bucket() {
        let r = Registry::new();
        let h = r.histogram("q");
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let snap = HistogramSnapshot::of(&h);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let live = h.quantile(q);
            let frozen = snap.quantile(q);
            assert!(
                frozen >= live
                    && frozen <= live * (1.0 + 2.0 * crate::histogram::QUANTIZATION_ERROR),
                "q={q}: live lower edge {live}, snapshot upper edge {frozen}"
            );
        }
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let ra = Registry::new();
        let rb = Registry::new();
        ra.counter("c").add(3);
        rb.counter("c").add(4);
        rb.counter("only_b").add(1);
        for v in [1.0, 2.0] {
            ra.histogram("h").record(v);
        }
        for v in [2.0, 8.0] {
            rb.histogram("h").record(v);
        }
        ra.span_stats("s").record_ns(10);
        rb.span_stats("s").record_ns(30);
        ra.sketch("k", 64).record(1);
        rb.sketch("k", 64).record(1);
        rb.sketch("k", 64).record(2);

        let mut merged = ra.snapshot();
        merged.merge(&rb.snapshot());

        assert_eq!(merged.counters["c"], 7);
        assert_eq!(merged.counters["only_b"], 1);
        let h = &merged.histograms["h"];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 13.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 8.0);
        assert_eq!(h.buckets.last().unwrap(), &(f64::INFINITY, 4));
        let cums: Vec<u64> = h.buckets.iter().map(|&(_, c)| c).collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            merged.spans["s"],
            SpanSnapshot {
                count: 2,
                total_ns: 40,
                max_ns: 30
            }
        );
        assert_eq!(merged.top_keys["k"].entries, vec![(1, 2), (2, 1)]);

        // Merging the snapshots in either order gives the identical result.
        let mut reversed = rb.snapshot();
        reversed.merge(&ra.snapshot());
        assert_eq!(merged.histograms, reversed.histograms);
        assert_eq!(merged.counters, reversed.counters);
    }

    #[test]
    fn reset_preserves_registrations_but_zeroes_values() {
        let r = Registry::new();
        r.counter("c").add(9);
        r.histogram("h").record(3.0);
        r.span_stats("s").record_ns(5);
        r.reset();
        assert_eq!(r.counter("c").value(), 0);
        assert_eq!(r.histogram("h").count(), 0);
        let snap = r.snapshot();
        assert!(snap.counters.contains_key("c"));
        assert!(snap.spans.is_empty(), "zero-count spans are omitted");
    }
}
