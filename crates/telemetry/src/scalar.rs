//! Sharded atomic scalars: [`Counter`], [`Gauge`], and the fixed-capacity [`IndexedCounter`].
//!
//! A counter's increments land on one of [`crate::COUNTER_SHARDS`]
//! cache-line-padded slots chosen by the calling thread's stable shard index; the shards are
//! summed only at scrape time, so recording threads never contend on a shared line. All record
//! paths are plain relaxed atomics — no locks, no allocation, no growth.

use crate::{shard_index, Pad, COUNTER_SHARDS, HISTOGRAM_SHARDS};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing sum, sharded per worker thread.
#[derive(Debug)]
pub struct Counter {
    shards: Box<[Pad<AtomicU64>]>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter {
            shards: (0..COUNTER_SHARDS).map(|_| Pad::default()).collect(),
        }
    }

    /// Adds one. Lock-free: one relaxed `fetch_add` on the calling thread's shard.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Lock-free: one relaxed `fetch_add` on the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index(COUNTER_SHARDS)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The merged value (sums every shard; scrape-time only).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins scalar (bit pattern of an `f64`). Not sharded: `set` replaces the value.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates a gauge reading `0.0`.
    pub fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Stores `value`. Lock-free: one relaxed store.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets the gauge to `0.0`.
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A fixed-capacity array of counters indexed by a small integer (a fanout histogram, per-shard
/// request counts), sharded over [`crate::HISTOGRAM_SHARDS`] per-worker
/// copies.
///
/// Memory is bounded by construction: `capacity` slots are allocated up front and indices
/// `>= capacity` clamp into the final slot (an explicit overflow bucket), so a counter vector
/// can absorb unbounded traffic in constant space.
#[derive(Debug)]
pub struct IndexedCounter {
    capacity: usize,
    shards: Box<[Box<[AtomicU64]>]>,
}

impl IndexedCounter {
    /// Creates `capacity` zeroed slots (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        IndexedCounter {
            capacity,
            shards: (0..HISTOGRAM_SHARDS)
                .map(|_| (0..capacity).map(|_| AtomicU64::new(0)).collect())
                .collect(),
        }
    }

    /// Number of slots (the clamp bound).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds one to slot `index` (clamped to the final overflow slot). Lock-free.
    #[inline]
    pub fn inc(&self, index: usize) {
        self.add(index, 1);
    }

    /// Adds `n` to slot `index` (clamped to the final overflow slot). Lock-free.
    #[inline]
    pub fn add(&self, index: usize, n: u64) {
        let slot = index.min(self.capacity - 1);
        self.shards[shard_index(HISTOGRAM_SHARDS)][slot].fetch_add(n, Ordering::Relaxed);
    }

    /// The merged per-slot values, truncated to the first `len` slots (scrape-time only).
    pub fn values(&self, len: usize) -> Vec<u64> {
        let len = len.min(self.capacity);
        let mut out = vec![0u64; len];
        for shard in self.shards.iter() {
            for (slot, total) in shard.iter().take(len).zip(out.iter_mut()) {
                *total += slot.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// The merged sum across every slot.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|shard| shard.iter())
            .map(|slot| slot.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every slot of every shard.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            for slot in shard.iter() {
                slot.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Bytes of counter storage held (constant for the lifetime of the value).
    pub fn memory_bytes(&self) -> usize {
        self.shards.len() * self.capacity * std::mem::size_of::<AtomicU64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8_000);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0.0);
        g.set(2.5);
        assert_eq!(g.value(), 2.5);
        g.set(-1.0);
        assert_eq!(g.value(), -1.0);
        g.reset();
        assert_eq!(g.value(), 0.0);
    }

    #[test]
    fn indexed_counter_clamps_to_overflow_slot() {
        let c = IndexedCounter::new(4);
        c.inc(0);
        c.add(2, 5);
        c.inc(3);
        c.inc(99); // clamps into slot 3
        assert_eq!(c.values(4), vec![1, 0, 5, 2]);
        assert_eq!(c.values(2), vec![1, 0]);
        assert_eq!(c.total(), 8);
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn indexed_counter_memory_is_constant() {
        let c = IndexedCounter::new(64);
        let before = c.memory_bytes();
        for i in 0..100_000usize {
            c.inc(i % 200);
        }
        assert_eq!(c.memory_bytes(), before);
        assert_eq!(c.total(), 100_000);
    }

    #[test]
    fn concurrent_indexed_increments_are_exact() {
        let c = IndexedCounter::new(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..10_000usize {
                        c.inc((i + t) % 8);
                    }
                });
            }
        });
        assert_eq!(c.total(), 40_000);
        assert_eq!(c.values(8).iter().sum::<u64>(), 40_000);
    }
}
