//! [`TopKSketch`]: a bounded, lock-free, space-saving-style per-key frequency sketch.
//!
//! The serving engine records every accessed key into this sketch so a repartition controller
//! can observe which keys are hot — the "access trace collection" half of the paper's
//! serve→observe→repartition loop — in **constant memory** at multiget rates.
//!
//! ## Design
//!
//! A fixed power-of-two table of 64-bit slots, each packing `(key: u32) << 32 | count: u32`
//! (the empty sentinel is `u64::MAX`, which no real entry can equal because counts saturate at
//! `u32::MAX - 1`). Recording a key probes a small deterministic window of slots derived from
//! a fixed hash of the key:
//!
//! 1. a slot already holding the key is bumped with one `fetch_add(1)`;
//! 2. otherwise an empty slot is claimed with one CAS;
//! 3. otherwise — the window is full of *other* keys — the window's minimum-count slot is
//!    decremented (the space-saving/`Frequent` eviction rule): a slot that reaches zero is
//!    replaced by the new key via CAS.
//!
//! Every step is a bounded number of atomic operations on pre-allocated slots: no locks, no
//! allocation, no unbounded retries (a failed CAS falls through rather than looping). Under
//! concurrency the counts are approximate in the usual space-saving sense; with a single
//! writer the sketch is fully deterministic for a given key sequence.
//!
//! ## Deterministic extraction
//!
//! [`TopKSketch::top`] sorts surviving entries by `(count descending, key ascending)` — ties
//! broken by the smaller key id — so two identical traces always extract the identical top-K
//! list, which the conformance tests rely on.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of slots probed per record (the set-associativity of the table).
const PROBE_WIDTH: usize = 4;

const EMPTY: u64 = u64::MAX;
const COUNT_MASK: u64 = 0xFFFF_FFFF;
/// Counts saturate one below the mask so an occupied slot can never equal [`EMPTY`].
const COUNT_SATURATE: u64 = COUNT_MASK - 1;

/// A bounded lock-free top-K frequency sketch over `u32` keys (see the module docs).
pub struct TopKSketch {
    slots: Box<[AtomicU64]>,
    mask: usize,
}

impl std::fmt::Debug for TopKSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKSketch")
            .field("capacity", &self.slots.len())
            .field("occupied", &self.occupied())
            .finish()
    }
}

/// A fixed 64-bit mix (splitmix64 finalizer) — deterministic across runs and platforms.
#[inline]
fn mix(key: u32) -> u64 {
    let mut z = (key as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TopKSketch {
    /// Creates a sketch with `capacity` slots, rounded up to a power of two (minimum 16).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16).next_power_of_two();
        TopKSketch {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY)).collect(),
            mask: capacity - 1,
        }
    }

    /// Number of slots (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one access of `key`. Lock-free with a bounded number of atomic operations.
    #[inline]
    pub fn record(&self, key: u32) {
        let base = mix(key) as usize;
        let packed_key = (key as u64) << 32;

        // Pass 1: bump the key if present, or claim the first empty slot.
        let mut min_slot = base & self.mask;
        let mut min_count = u64::MAX;
        for probe in 0..PROBE_WIDTH {
            let index = (base + probe) & self.mask;
            let slot = &self.slots[index];
            let current = slot.load(Ordering::Relaxed);
            if current == EMPTY {
                if slot
                    .compare_exchange(EMPTY, packed_key | 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
                // Lost the race; fall through and treat whatever landed there as occupied.
                let raced = slot.load(Ordering::Relaxed);
                if raced >> 32 == key as u64 {
                    slot.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                continue;
            }
            if current >> 32 == key as u64 {
                if current & COUNT_MASK < COUNT_SATURATE {
                    slot.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            let count = current & COUNT_MASK;
            if count < min_count {
                min_count = count;
                min_slot = index;
            }
        }

        // Pass 2 (space-saving eviction): every probed slot belongs to another key. Decrement
        // the window's minimum; a slot that reaches zero is recycled for the new key. A failed
        // CAS simply drops this observation — bounded work beats exactness here.
        let slot = &self.slots[min_slot];
        let current = slot.load(Ordering::Relaxed);
        if current == EMPTY {
            let _ =
                slot.compare_exchange(EMPTY, packed_key | 1, Ordering::Relaxed, Ordering::Relaxed);
            return;
        }
        let count = current & COUNT_MASK;
        let next = if count <= 1 {
            packed_key | 1
        } else {
            current - 1
        };
        let _ = slot.compare_exchange(current, next, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Number of occupied slots (scrape-time only).
    pub fn occupied(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != EMPTY)
            .count()
    }

    /// The `k` highest-count `(key, count)` entries, sorted by count descending with ties
    /// broken by ascending key — fully deterministic for a given table state.
    pub fn top(&self, k: usize) -> Vec<(u32, u64)> {
        let mut entries: Vec<(u32, u64)> = self
            .slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&packed| packed != EMPTY)
            .map(|packed| ((packed >> 32) as u32, packed & COUNT_MASK))
            .filter(|&(_, count)| count > 0)
            .collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Empties every slot.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.store(EMPTY, Ordering::Relaxed);
        }
    }

    /// Bytes of slot storage held (constant for the lifetime of the sketch).
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<AtomicU64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_repeated_keys_exactly_when_uncontended() {
        let s = TopKSketch::new(256);
        for _ in 0..10 {
            s.record(7);
        }
        for _ in 0..5 {
            s.record(3);
        }
        s.record(9);
        assert_eq!(s.top(3), vec![(7, 10), (3, 5), (9, 1)]);
    }

    #[test]
    fn tie_breaking_is_by_ascending_key() {
        let s = TopKSketch::new(256);
        for key in [42, 7, 99] {
            for _ in 0..4 {
                s.record(key);
            }
        }
        assert_eq!(s.top(3), vec![(7, 4), (42, 4), (99, 4)]);
    }

    #[test]
    fn identical_traces_extract_identical_topk() {
        let trace: Vec<u32> = (0..5_000).map(|i| (i * i + 13) % 97).collect();
        let a = TopKSketch::new(128);
        let b = TopKSketch::new(128);
        for &key in &trace {
            a.record(key);
        }
        for &key in &trace {
            b.record(key);
        }
        assert_eq!(a.top(20), b.top(20));
    }

    #[test]
    fn heavy_hitters_survive_eviction_pressure() {
        // 8 hot keys at ~1000 hits each against 2000 cold keys at 1 hit, in a small table:
        // the space-saving rule must keep every hot key on top.
        let s = TopKSketch::new(64);
        for round in 0..1000 {
            for hot in 0..8u32 {
                s.record(1_000_000 + hot);
            }
            for cold in 0..2u32 {
                s.record(round * 2 + cold);
            }
        }
        let top: Vec<u32> = s.top(8).into_iter().map(|(k, _)| k).collect();
        for hot in 0..8u32 {
            assert!(
                top.contains(&(1_000_000 + hot)),
                "hot key {hot} missing: {top:?}"
            );
        }
    }

    #[test]
    fn memory_is_bounded_under_unbounded_distinct_keys() {
        let s = TopKSketch::new(128);
        let before = s.memory_bytes();
        for key in 0..500_000u32 {
            s.record(key);
        }
        assert_eq!(s.memory_bytes(), before);
        assert!(s.occupied() <= s.capacity());
    }

    #[test]
    fn concurrent_recording_is_safe_and_finds_the_hot_key() {
        let s = TopKSketch::new(256);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..20_000u32 {
                        // Every thread hammers key 5 plus a thread-local cold stream.
                        s.record(5);
                        s.record(1000 + (i * 4 + t) % 64);
                    }
                });
            }
        });
        let top = s.top(1);
        assert_eq!(top[0].0, 5, "hot key must dominate: {top:?}");
        assert!(top[0].1 > 20_000, "hot count underestimated: {top:?}");
    }

    #[test]
    fn reset_empties_the_table() {
        let s = TopKSketch::new(64);
        s.record(1);
        s.reset();
        assert_eq!(s.occupied(), 0);
        assert!(s.top(4).is_empty());
    }
}
