//! Hierarchical phase spans ([`Span`]) and pre-resolved hot-path timers ([`Timer`]).
//!
//! A span measures wall time for a named phase and folds it, on drop, into a per-path
//! [`SpanStats`] cell in the global registry. Paths are `/`-joined:
//! `Span::enter("partition/refinement").child("iteration")` records under
//! `partition/refinement` and `partition/refinement/iteration`.
//!
//! The *fold* is atomic-only (three relaxed `fetch_*` ops); the *path lookup* takes a shared
//! read lock the first time and an exclusive lock only when a brand-new path is interned.
//! That is fine at phase granularity (a handful of spans per partitioning run), but not for
//! per-request serving paths — those use a [`Timer`]: the [`SpanStats`] cell is resolved once
//! at engine construction and each [`TimerGuard`] drop is pure atomics.
//!
//! When telemetry is [disabled](crate::enabled), `Span::enter` and `Timer::start` skip even
//! the `Instant::now()` call and their drops do nothing.

use crate::{enabled, global};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Aggregated wall-time statistics for one span path: invocation count, total and maximum
/// nanoseconds. All updates are relaxed atomics.
#[derive(Debug, Default)]
pub struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStats {
    /// Folds one measured duration into the stats. Lock-free.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of completed spans on this path.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total wall time across completed spans, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Longest single span, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Zeroes the stats.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// An in-flight phase measurement; records into the global registry when dropped.
///
/// Inert (and nearly free) when telemetry is disabled at the moment `enter` was called.
#[derive(Debug)]
pub struct Span {
    /// `None` when telemetry was disabled at enter time.
    live: Option<(String, Instant)>,
}

impl Span {
    /// Starts a span on `path` (a `/`-joined phase path).
    #[inline]
    pub fn enter(path: &str) -> Self {
        Span {
            live: enabled().then(|| (path.to_string(), Instant::now())),
        }
    }

    /// Starts a child span at `<self.path>/<name>`. A child of a disabled span is disabled.
    #[inline]
    pub fn child(&self, name: &str) -> Self {
        Span {
            live: self
                .live
                .as_ref()
                .filter(|_| enabled())
                .map(|(path, _)| (format!("{path}/{name}"), Instant::now())),
        }
    }

    /// The span's path, if it is recording.
    pub fn path(&self) -> Option<&str> {
        self.live.as_ref().map(|(p, _)| p.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((path, start)) = self.live.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            global().span_stats(&path).record_ns(ns);
        }
    }
}

/// A pre-resolved handle to one span path's [`SpanStats`], for per-request hot paths.
///
/// Resolving the path (and its registry lock) happens once, at
/// [`Registry::timer`](crate::Registry::timer) time; every [`Timer::start`]/[`TimerGuard`]
/// drop afterwards is atomics only.
#[derive(Debug, Clone)]
pub struct Timer {
    stats: Arc<SpanStats>,
}

impl Timer {
    pub(crate) fn new(stats: Arc<SpanStats>) -> Self {
        Timer { stats }
    }

    /// Starts timing; the returned guard records on drop. Inert when telemetry is disabled.
    #[inline]
    pub fn start(&self) -> TimerGuard<'_> {
        TimerGuard {
            stats: &self.stats,
            start: enabled().then(Instant::now),
        }
    }

    /// Folds an externally measured duration into this timer's stats (still gated on
    /// [`enabled`]). Useful when the caller already has the elapsed time on hand.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if enabled() {
            self.stats.record_ns(ns);
        }
    }

    /// The underlying stats cell (scrape-time inspection).
    pub fn stats(&self) -> &SpanStats {
        &self.stats
    }
}

/// Guard returned by [`Timer::start`]; folds the elapsed time into the timer's stats on drop.
#[derive(Debug)]
pub struct TimerGuard<'a> {
    stats: &'a SpanStats,
    start: Option<Instant>,
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.stats.record_ns(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stats_fold_is_exact() {
        let stats = SpanStats::default();
        stats.record_ns(10);
        stats.record_ns(30);
        stats.record_ns(20);
        assert_eq!(stats.count(), 3);
        assert_eq!(stats.total_ns(), 60);
        assert_eq!(stats.max_ns(), 30);
        stats.reset();
        assert_eq!((stats.count(), stats.total_ns(), stats.max_ns()), (0, 0, 0));
    }

    #[test]
    fn child_paths_join_with_slash() {
        #[cfg(not(feature = "noop"))]
        {
            let _guard = crate::toggle_guard();
            crate::set_enabled(true);
            let root = Span::enter("test_span/root");
            let child = root.child("leaf");
            assert_eq!(root.path(), Some("test_span/root"));
            assert_eq!(child.path(), Some("test_span/root/leaf"));
            drop(child);
            drop(root);
            let snap = global().snapshot();
            let leaf = &snap.spans["test_span/root/leaf"];
            assert!(leaf.count >= 1);
            assert!(snap.spans["test_span/root"].total_ns >= leaf.total_ns);
        }
    }

    #[test]
    fn concurrent_span_folds_merge_exactly() {
        let stats = SpanStats::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stats = &stats;
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        stats.record_ns(2);
                    }
                });
            }
        });
        assert_eq!(stats.count(), 40_000);
        assert_eq!(stats.total_ns(), 80_000);
        assert_eq!(stats.max_ns(), 2);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn disabled_spans_and_timers_record_nothing() {
        let _guard = crate::toggle_guard();
        crate::set_enabled(false);
        let span = Span::enter("test_span/disabled");
        assert_eq!(span.path(), None);
        assert_eq!(span.child("x").path(), None);
        drop(span);
        let timer = global().timer("test_span/disabled_timer");
        drop(timer.start());
        timer.record_ns(123);
        crate::set_enabled(true);
        assert_eq!(timer.stats().count(), 0);
        let snap = global().snapshot();
        assert!(!snap.spans.contains_key("test_span/disabled"));
    }

    #[test]
    fn timer_guard_records_on_drop() {
        #[cfg(not(feature = "noop"))]
        {
            let _guard = crate::toggle_guard();
            crate::set_enabled(true);
            let timer = global().timer("test_span/guarded");
            {
                let _guard = timer.start();
            }
            assert_eq!(timer.stats().count(), 1);
            timer.record_ns(500);
            assert_eq!(timer.stats().count(), 2);
            assert!(timer.stats().max_ns() >= 500 || timer.stats().total_ns() >= 500);
        }
    }
}
