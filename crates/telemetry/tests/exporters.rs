//! Exporter conformance: a hand-rolled Prometheus exposition-format line checker and JSON
//! snapshot round-trip, run against a representative registry and a golden fixture.

use shp_telemetry::{Registry, Snapshot};
use std::collections::BTreeMap;

/// Builds a registry exercising every metric kind with serving-shaped names.
fn representative_snapshot() -> Snapshot {
    let registry = Registry::new();
    registry.counter("serving/queries").add(1000);
    registry.counter("serving/cache/hits").add(750);
    registry.counter("ingest/bytes_read").add(123_456_789);
    registry.gauge("serving/shard_skew").set(1.375);
    registry.gauge("serving/epoch").set(3.0);
    let latency = registry.histogram("serving/latency_ms");
    for i in 0..1000u32 {
        latency.record(0.05 + f64::from(i % 97) * 0.03);
    }
    let fanout = registry.histogram("serving/fanout");
    for i in 0..1000u32 {
        fanout.record(f64::from(1 + i % 7));
    }
    registry
        .span_stats("partition/refinement")
        .record_ns(5_000_000);
    registry
        .span_stats("partition/refinement/iteration")
        .record_ns(1_200_000);
    registry.span_stats("serving/route").record_ns(800);
    let sketch = registry.sketch("serving/hot_keys", 256);
    for i in 0..500u32 {
        sketch.record(i % 19);
    }
    registry.snapshot()
}

// ---------------------------------------------------------------------------
// Prometheus line checker
// ---------------------------------------------------------------------------

/// One parsed exposition sample: `(metric name, label pairs, value)`.
type Sample = (String, Vec<(String, String)>, f64);

/// Splits a sample line `name{labels} value` into its parts, validating syntax.
fn parse_sample(line: &str) -> Sample {
    let (name_and_labels, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("sample line has no value: {line:?}"));
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other
            .parse()
            .unwrap_or_else(|_| panic!("unparsable sample value in {line:?}")),
    };
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set: {line:?}"));
            let mut labels = Vec::new();
            let mut remaining = body;
            while !remaining.is_empty() {
                let (key, rest) = remaining
                    .split_once("=\"")
                    .unwrap_or_else(|| panic!("malformed label in {line:?}"));
                // Find the closing unescaped quote.
                let mut end = None;
                let bytes = rest.as_bytes();
                let mut i = 0;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            end = Some(i);
                            break;
                        }
                        _ => i += 1,
                    }
                }
                let end = end.unwrap_or_else(|| panic!("unterminated label value: {line:?}"));
                let raw = &rest[..end];
                let unescaped = raw
                    .replace("\\n", "\n")
                    .replace("\\\"", "\"")
                    .replace("\\\\", "\\");
                labels.push((key.to_string(), unescaped));
                remaining = &rest[end + 1..];
                remaining = remaining.strip_prefix(',').unwrap_or(remaining);
            }
            (name.to_string(), labels)
        }
    };
    assert!(
        !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?} in {line:?}"
    );
    (name, labels, value)
}

/// Validates a full exposition document and returns `(type by family, samples)`.
fn check_exposition(text: &str) -> (BTreeMap<String, String>, Vec<Sample>) {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').expect("TYPE line needs a kind");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "unknown TYPE {kind:?}"
            );
            assert!(
                types.insert(family.to_string(), kind.to_string()).is_none(),
                "duplicate TYPE for {family}"
            );
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, help) = rest.split_once(' ').expect("HELP line needs text");
            assert!(!help.is_empty());
            helps.insert(family.to_string(), help.to_string());
        } else if line.starts_with('#') {
            panic!("unknown comment line {line:?}");
        } else {
            samples.push(parse_sample(line));
        }
    }
    // Every TYPE has a HELP and every sample belongs to a declared family.
    for family in types.keys() {
        assert!(helps.contains_key(family), "{family} has TYPE but no HELP");
    }
    for (name, _, _) in &samples {
        let family_known = types.contains_key(name)
            || [("_bucket", ""), ("_sum", ""), ("_count", "")]
                .iter()
                .any(|(suffix, _)| {
                    name.strip_suffix(suffix).is_some_and(|family| {
                        types.get(family).map(String::as_str) == Some("histogram")
                    })
                });
        assert!(family_known, "sample {name} has no TYPE declaration");
    }
    (types, samples)
}

#[test]
fn prometheus_document_passes_the_line_checker() {
    let text = representative_snapshot().to_prometheus();
    let (types, samples) = check_exposition(&text);

    assert_eq!(types["serving_queries_total"], "counter");
    assert_eq!(types["serving_shard_skew"], "gauge");
    assert_eq!(types["serving_latency_ms"], "histogram");
    assert_eq!(types["shp_span_seconds_total"], "counter");
    assert_eq!(types["shp_hot_key_hits"], "gauge");

    let value_of = |name: &str| {
        samples
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .2
    };
    assert_eq!(value_of("serving_queries_total"), 1000.0);
    assert_eq!(value_of("serving_cache_hits_total"), 750.0);
    assert_eq!(value_of("serving_shard_skew"), 1.375);
    assert_eq!(value_of("serving_latency_ms_count"), 1000.0);
}

#[test]
fn histogram_buckets_are_cumulative_monotone_and_end_at_inf() {
    let text = representative_snapshot().to_prometheus();
    let (_, samples) = check_exposition(&text);
    for family in ["serving_latency_ms", "serving_fanout"] {
        let bucket_name = format!("{family}_bucket");
        let buckets: Vec<(f64, f64)> = samples
            .iter()
            .filter(|(n, _, _)| n == &bucket_name)
            .map(|(_, labels, value)| {
                assert_eq!(labels.len(), 1, "{bucket_name} must carry exactly le=");
                assert_eq!(labels[0].0, "le");
                let le = match labels[0].1.as_str() {
                    "+Inf" => f64::INFINITY,
                    other => other.parse().expect("numeric le"),
                };
                (le, *value)
            })
            .collect();
        assert!(!buckets.is_empty());
        for window in buckets.windows(2) {
            assert!(window[0].0 < window[1].0, "{family}: le edges must ascend");
            assert!(
                window[0].1 <= window[1].1,
                "{family}: cumulative counts must be monotone"
            );
        }
        let last = buckets.last().unwrap();
        assert_eq!(last.0, f64::INFINITY, "{family}: final bucket must be +Inf");
        let count = samples
            .iter()
            .find(|(n, _, _)| n == &format!("{family}_count"))
            .unwrap()
            .2;
        assert_eq!(last.1, count, "{family}: +Inf bucket must equal _count");
    }
}

#[test]
fn label_escaping_survives_the_checker() {
    let registry = Registry::new();
    registry
        .span_stats("odd\"path\\with\nnewline")
        .record_ns(10);
    let text = registry.snapshot().to_prometheus();
    let (_, samples) = check_exposition(&text);
    let (_, labels, _) = samples
        .iter()
        .find(|(n, _, _)| n == "shp_span_count_total")
        .expect("span sample present");
    assert_eq!(labels[0].1, "odd\"path\\with\nnewline");
}

#[test]
fn json_snapshot_round_trips_through_a_file() {
    let snapshot = representative_snapshot();
    let dir = std::env::temp_dir().join(format!("shp_telemetry_export_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.json");
    std::fs::write(&path, snapshot.to_json()).unwrap();
    let read_back = std::fs::read_to_string(&path).unwrap();
    let parsed = Snapshot::from_json(&read_back).expect("parse snapshot file");
    assert_eq!(parsed, snapshot);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_prometheus_fixture_is_stable() {
    // A small, fully pinned registry: the exact rendered bytes are part of the exporter's
    // contract (deterministic ordering, number formatting, label syntax).
    let registry = Registry::new();
    registry.counter("demo/requests").add(7);
    registry.gauge("demo/ratio").set(0.5);
    let h = registry.histogram("demo/size");
    h.record(1.0);
    h.record(2.0);
    registry.span_stats("demo/phase").record_ns(1_500_000_000);
    let text = registry.snapshot().to_prometheus();
    let expected = "\
# HELP demo_requests_total Counter demo/requests
# TYPE demo_requests_total counter
demo_requests_total 7
# HELP demo_ratio Gauge demo/ratio
# TYPE demo_ratio gauge
demo_ratio 0.5
# HELP demo_size Histogram demo/size
# TYPE demo_size histogram
demo_size_bucket{le=\"1.015625\"} 1
demo_size_bucket{le=\"2.03125\"} 2
demo_size_bucket{le=\"+Inf\"} 2
demo_size_sum 3
demo_size_count 2
# HELP shp_span_count_total Completed spans per phase path
# TYPE shp_span_count_total counter
shp_span_count_total{span=\"demo/phase\"} 1
# HELP shp_span_seconds_total Wall seconds per phase path
# TYPE shp_span_seconds_total counter
shp_span_seconds_total{span=\"demo/phase\"} 1.5
# HELP shp_span_seconds_max Longest single span per phase path
# TYPE shp_span_seconds_max gauge
shp_span_seconds_max{span=\"demo/phase\"} 1.5
";
    assert_eq!(text, expected);
}

#[test]
fn merged_snapshots_export_consistently() {
    // Two registries (as the CLI's replay produces for its two engines) merge into one
    // snapshot whose exposition still passes the checker.
    let a = Registry::new();
    a.counter("serving/random/queries").add(10);
    a.histogram("serving/random/latency_ms").record(1.0);
    let b = Registry::new();
    b.counter("serving/shp2/queries").add(10);
    b.histogram("serving/shp2/latency_ms").record(0.5);
    let mut merged = a.snapshot();
    merged.merge(&b.snapshot());
    let (types, _) = check_exposition(&merged.to_prometheus());
    assert!(types.contains_key("serving_random_queries_total"));
    assert!(types.contains_key("serving_shp2_queries_total"));
    let round_trip = Snapshot::from_json(&merged.to_json()).unwrap();
    assert_eq!(round_trip, merged);
}
