//! The per-vertex compute context handed to [`crate::VertexProgram::compute`].

use crate::program::VertexProgram;
use crate::routing::WorkerOutbox;
use crate::topology::Topology;

/// Everything a vertex may do during its compute call: inspect the superstep and the global
/// value, look at its out-neighbors, send messages, contribute to the aggregate, and vote to
/// halt. Mirrors the API surface Giraph exposes to a `Computation`.
pub struct Context<'a, P: VertexProgram + ?Sized> {
    pub(crate) program: &'a P,
    pub(crate) superstep: usize,
    pub(crate) global: &'a P::Global,
    pub(crate) topology: &'a Topology,
    pub(crate) vertex: u32,
    pub(crate) outbox: &'a mut WorkerOutbox<P::Message>,
    pub(crate) aggregate: &'a mut P::Aggregate,
    pub(crate) halt: &'a mut bool,
}

impl<'a, P: VertexProgram + ?Sized> Context<'a, P> {
    /// The current superstep number (0-based).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// The global value computed by the master after the previous superstep.
    pub fn global(&self) -> &P::Global {
        self.global
    }

    /// The id of the vertex currently being computed.
    pub fn vertex(&self) -> u32 {
        self.vertex
    }

    /// Number of vertices in the whole graph.
    pub fn num_vertices(&self) -> usize {
        self.topology.num_vertices()
    }

    /// Out-neighbors of the current vertex.
    pub fn neighbors(&self) -> &'a [u32] {
        self.topology.neighbors(self.vertex)
    }

    /// Out-degree of the current vertex.
    pub fn degree(&self) -> usize {
        self.topology.degree(self.vertex)
    }

    /// Sends a message to vertex `to`, delivered at the start of the next superstep.
    pub fn send(&mut self, to: u32, message: P::Message) {
        let size = self.program.message_size(&message);
        self.outbox.push(to, message, size);
    }

    /// Sends a copy of `message` to every out-neighbor of the current vertex.
    pub fn send_to_neighbors(&mut self, message: P::Message) {
        for &n in self.topology.neighbors(self.vertex) {
            let size = self.program.message_size(&message);
            self.outbox.push(n, message.clone(), size);
        }
    }

    /// Contributes a value to this superstep's aggregate (merged with
    /// [`crate::VertexProgram::merge_aggregates`]).
    pub fn aggregate(&mut self, contribution: P::Aggregate) {
        let current = std::mem::take(self.aggregate);
        *self.aggregate = self.program.merge_aggregates(current, contribution);
    }

    /// Votes to halt: the vertex will not be computed in later supersteps unless it receives a
    /// message.
    pub fn vote_to_halt(&mut self) {
        *self.halt = true;
    }
}
