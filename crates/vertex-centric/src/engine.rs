//! The BSP engine: worker partitioning, superstep loop, message routing, master compute.

use crate::context::Context;
use crate::metrics::{ExecutionMetrics, SuperstepMetrics};
use crate::program::{MasterOutcome, VertexProgram};
use crate::routing::{group_by_vertex, route, WorkerOutbox};
use crate::topology::Topology;
use std::time::Instant;

/// Configuration of an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of simulated workers (machines). Vertex `v` is owned by worker `v mod num_workers`,
    /// matching Giraph's pseudo-random vertex distribution.
    pub num_workers: usize,
    /// Hard cap on the number of supersteps; the run also stops earlier if the master halts or
    /// every vertex has voted to halt with no messages in flight.
    pub max_supersteps: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_workers: 4,
            max_supersteps: 1_000,
        }
    }
}

impl EngineConfig {
    /// Creates a configuration with the given worker count and superstep limit.
    pub fn new(num_workers: usize, max_supersteps: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        EngineConfig {
            num_workers,
            max_supersteps,
        }
    }
}

/// Per-worker state: the values and halt flags of the vertices it owns.
struct WorkerState<V> {
    /// Values of owned vertices, indexed by local index (`vertex / num_workers`).
    values: Vec<V>,
    /// Halt flags of owned vertices.
    halted: Vec<bool>,
}

/// One simulated worker's unit of superstep work: its mutable state and pending inbox.
type WorkerTask<'a, V, M> = (&'a mut WorkerState<V>, Vec<(u32, M)>);

/// Result produced by one worker for one superstep.
struct WorkerStepResult<M, A> {
    outbox: WorkerOutbox<M>,
    aggregate: A,
    active: usize,
    combined: u64,
}

/// A vertex-centric BSP engine executing a [`VertexProgram`] over a [`Topology`].
///
/// # Example
///
/// Counting each vertex's degree via messages (every vertex messages its neighbors in
/// superstep 0 and counts incoming messages in superstep 1):
///
/// ```
/// use shp_vertex_centric::{Context, Engine, EngineConfig, MasterOutcome, TopologyBuilder, VertexProgram};
///
/// struct DegreeCount;
/// impl VertexProgram for DegreeCount {
///     type Value = u32;
///     type Message = u32;
///     type Aggregate = u64;
///     type Global = ();
///
///     fn compute(&self, ctx: &mut Context<'_, Self>, _v: u32, value: &mut u32, msgs: &[u32]) {
///         if ctx.superstep() == 0 {
///             ctx.send_to_neighbors(1);
///         } else {
///             *value = msgs.len() as u32;
///             ctx.aggregate(msgs.len() as u64);
///             ctx.vote_to_halt();
///         }
///     }
///     fn merge_aggregates(&self, a: u64, b: u64) -> u64 { a + b }
///     fn master_compute(&self, step: usize, _agg: u64, _g: &()) -> MasterOutcome<()> {
///         if step >= 1 { MasterOutcome::Halt } else { MasterOutcome::Continue(()) }
///     }
/// }
///
/// let mut t = TopologyBuilder::new(3);
/// t.add_undirected_edge(0, 1);
/// t.add_undirected_edge(1, 2);
/// let mut engine = Engine::new(DegreeCount, t.build(), vec![0; 3], EngineConfig::new(2, 10));
/// engine.run();
/// assert_eq!(engine.values(), vec![1, 2, 1]);
/// ```
pub struct Engine<P: VertexProgram> {
    program: P,
    config: EngineConfig,
    topology: Topology,
    workers: Vec<WorkerState<P::Value>>,
    global: P::Global,
    metrics: ExecutionMetrics,
    /// Messages awaiting delivery, one inbox per worker.
    inboxes: Vec<Vec<(u32, P::Message)>>,
    superstep: usize,
}

impl<P: VertexProgram> Engine<P> {
    /// Creates an engine over `topology` with one initial value per vertex.
    ///
    /// # Panics
    /// Panics if `initial_values.len() != topology.num_vertices()`.
    pub fn new(
        program: P,
        topology: Topology,
        initial_values: Vec<P::Value>,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(
            initial_values.len(),
            topology.num_vertices(),
            "one initial value per vertex required"
        );
        let w = config.num_workers;
        let mut workers: Vec<WorkerState<P::Value>> = (0..w)
            .map(|_| WorkerState {
                values: Vec::new(),
                halted: Vec::new(),
            })
            .collect();
        for (v, value) in initial_values.into_iter().enumerate() {
            let worker = v % w;
            workers[worker].values.push(value);
            workers[worker].halted.push(false);
        }
        let metrics = ExecutionMetrics::new(w);
        let inboxes = (0..w).map(|_| Vec::new()).collect();
        Engine {
            program,
            config,
            topology,
            workers,
            global: P::Global::default(),
            metrics,
            inboxes,
            superstep: 0,
        }
    }

    /// The number of vertices managed by the engine.
    pub fn num_vertices(&self) -> usize {
        self.topology.num_vertices()
    }

    /// The current global value (set by the last master compute).
    pub fn global(&self) -> &P::Global {
        &self.global
    }

    /// Execution metrics recorded so far.
    pub fn metrics(&self) -> &ExecutionMetrics {
        &self.metrics
    }

    /// The current value of vertex `v`.
    pub fn value(&self, v: u32) -> &P::Value {
        let w = v as usize % self.config.num_workers;
        let local = v as usize / self.config.num_workers;
        &self.workers[w].values[local]
    }

    /// All vertex values, in vertex-id order.
    pub fn values(&self) -> Vec<P::Value> {
        (0..self.num_vertices() as u32)
            .map(|v| self.value(v).clone())
            .collect()
    }

    /// Runs supersteps until the master halts, every vertex is halted with no pending messages,
    /// or the configured superstep limit is reached. Returns the number of supersteps executed.
    pub fn run(&mut self) -> usize {
        let mut executed = 0;
        while self.superstep < self.config.max_supersteps {
            let (halt, any_active) = self.run_superstep();
            executed += 1;
            if halt || !any_active {
                break;
            }
        }
        executed
    }

    /// Runs a single superstep. Returns `(master_halted, any_vertex_active_or_messages_pending)`.
    pub fn run_superstep(&mut self) -> (bool, bool) {
        let start = Instant::now();
        let num_workers = self.config.num_workers;
        let program = &self.program;
        let topology = &self.topology;
        let global = &self.global;
        let superstep = self.superstep;

        // Take the pending inboxes; they will be replaced by the newly routed messages.
        let inboxes = std::mem::replace(
            &mut self.inboxes,
            (0..num_workers).map(|_| Vec::new()).collect(),
        );

        // Each simulated worker processes its vertices on its own real thread (one scoped
        // thread per worker, results collected in worker-index order so the merge below is
        // deterministic regardless of which worker finishes first).
        let work: Vec<WorkerTask<'_, P::Value, P::Message>> =
            self.workers.iter_mut().zip(inboxes).collect();
        let results: Vec<WorkerStepResult<P::Message, P::Aggregate>> =
            rayon::pool::map_vec(work, num_workers, |worker_idx, (state, inbox)| {
                let local_count = state.values.len();
                let (messages, combined) =
                    group_by_vertex(inbox, num_workers, local_count, |a, b| {
                        program.combine(a, b)
                    });
                let mut outbox = WorkerOutbox::new(worker_idx, num_workers);
                let mut aggregate = P::Aggregate::default();
                let mut active = 0usize;
                for (local, incoming) in messages.iter().enumerate() {
                    if state.halted[local] && incoming.is_empty() {
                        continue;
                    }
                    active += 1;
                    state.halted[local] = false;
                    let vertex = (local * num_workers + worker_idx) as u32;
                    let mut halt = false;
                    {
                        let mut ctx = Context {
                            program,
                            superstep,
                            global,
                            topology,
                            vertex,
                            outbox: &mut outbox,
                            aggregate: &mut aggregate,
                            halt: &mut halt,
                        };
                        program.compute(&mut ctx, vertex, &mut state.values[local], incoming);
                    }
                    state.halted[local] = halt;
                }
                WorkerStepResult {
                    outbox,
                    aggregate,
                    active,
                    combined,
                }
            });

        // Collect metrics and the merged aggregate deterministically (worker-index order).
        let mut step_metrics = SuperstepMetrics {
            superstep,
            ..Default::default()
        };
        let mut merged = P::Aggregate::default();
        let mut outboxes = Vec::with_capacity(num_workers);
        for result in results {
            step_metrics.active_vertices += result.active;
            step_metrics.max_worker_vertices = step_metrics.max_worker_vertices.max(result.active);
            step_metrics.messages_sent += result.outbox.messages;
            step_metrics.remote_messages += result.outbox.remote_messages;
            step_metrics.bytes_sent += result.outbox.bytes;
            step_metrics.remote_bytes += result.outbox.remote_bytes;
            step_metrics.combined_messages += result.combined;
            merged = self.program.merge_aggregates(merged, result.aggregate);
            outboxes.push(result.outbox);
        }

        // Route messages to their destination workers for the next superstep.
        self.inboxes = route(outboxes);

        // Master compute.
        let master_halt = match self.program.master_compute(superstep, merged, &self.global) {
            MasterOutcome::Continue(next_global) => {
                self.global = next_global;
                false
            }
            MasterOutcome::Halt => true,
        };

        step_metrics.duration = start.elapsed();
        self.metrics.supersteps.push(step_metrics);
        self.superstep += 1;

        let pending_messages = self.inboxes.iter().any(|i| !i.is_empty());
        let any_unhalted = self.workers.iter().any(|w| w.halted.iter().any(|&h| !h));
        (master_halt, pending_messages || any_unhalted)
    }

    /// Consumes the engine and returns `(vertex values, global value, metrics)`.
    pub fn into_parts(self) -> (Vec<P::Value>, P::Global, ExecutionMetrics) {
        let values = self.values();
        (values, self.global, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;

    /// Connected components by label propagation: every vertex repeatedly adopts the minimum
    /// id it has seen and halts when its label stops changing.
    struct MinLabel;

    impl VertexProgram for MinLabel {
        type Value = u32;
        type Message = u32;
        type Aggregate = u64; // number of label changes this superstep
        type Global = ();

        fn compute(&self, ctx: &mut Context<'_, Self>, _v: u32, value: &mut u32, msgs: &[u32]) {
            let incoming_min = msgs.iter().copied().min();
            let mut changed = ctx.superstep() == 0;
            if let Some(m) = incoming_min {
                if m < *value {
                    *value = m;
                    changed = true;
                }
            }
            if changed {
                ctx.aggregate(1);
                ctx.send_to_neighbors(*value);
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
            Some(*a.min(b))
        }

        fn merge_aggregates(&self, a: u64, b: u64) -> u64 {
            a + b
        }

        fn master_compute(&self, _s: usize, _agg: u64, _g: &()) -> MasterOutcome<()> {
            MasterOutcome::Continue(())
        }
    }

    fn two_components_topology() -> Topology {
        // Component {0,2,4} in a path, component {1,3} in an edge (ids chosen so both workers
        // own vertices of both components).
        let mut b = TopologyBuilder::new(5);
        b.add_undirected_edge(0, 2);
        b.add_undirected_edge(2, 4);
        b.add_undirected_edge(1, 3);
        b.build()
    }

    #[test]
    fn connected_components_converge() {
        let topology = two_components_topology();
        let initial: Vec<u32> = (0..5).collect();
        let mut engine = Engine::new(MinLabel, topology, initial, EngineConfig::new(2, 50));
        let steps = engine.run();
        assert!(steps < 50, "should converge, ran {steps} supersteps");
        assert_eq!(engine.values(), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn results_are_independent_of_worker_count() {
        for workers in [1, 2, 3, 5, 8] {
            let topology = two_components_topology();
            let initial: Vec<u32> = (0..5).collect();
            let mut engine =
                Engine::new(MinLabel, topology, initial, EngineConfig::new(workers, 50));
            engine.run();
            assert_eq!(engine.values(), vec![0, 1, 0, 1, 0], "workers={workers}");
        }
    }

    #[test]
    fn metrics_track_messages_and_remote_fraction() {
        let topology = two_components_topology();
        let initial: Vec<u32> = (0..5).collect();
        let mut engine = Engine::new(MinLabel, topology, initial, EngineConfig::new(2, 50));
        engine.run();
        let metrics = engine.metrics();
        assert!(metrics.total_messages() > 0);
        assert!(metrics.total_bytes() >= metrics.total_messages() * 4);
        assert!(metrics.total_remote_messages() <= metrics.total_messages());
        assert_eq!(metrics.num_workers, 2);
        assert!(metrics.num_supersteps() >= 2);
        // Superstep 0 runs every vertex.
        assert_eq!(metrics.supersteps[0].active_vertices, 5);
    }

    #[test]
    fn single_worker_sends_no_remote_messages() {
        let topology = two_components_topology();
        let initial: Vec<u32> = (0..5).collect();
        let mut engine = Engine::new(MinLabel, topology, initial, EngineConfig::new(1, 50));
        engine.run();
        assert_eq!(engine.metrics().total_remote_messages(), 0);
        assert!(engine.metrics().total_messages() > 0);
    }

    #[test]
    fn combiner_reduces_delivered_messages() {
        // Star graph: many leaves message the hub with the min combiner; combined count > 0.
        let mut b = TopologyBuilder::new(9);
        for leaf in 1..9 {
            b.add_undirected_edge(0, leaf);
        }
        let topology = b.build();
        let initial: Vec<u32> = (0..9).collect();
        let mut engine = Engine::new(MinLabel, topology, initial, EngineConfig::new(2, 50));
        engine.run();
        let combined: u64 = engine
            .metrics()
            .supersteps
            .iter()
            .map(|s| s.combined_messages)
            .sum();
        assert!(
            combined > 0,
            "the min combiner should merge messages to the hub"
        );
        assert!(engine.values().iter().all(|&v| v == 0));
    }

    /// Program that halts via master decision after a fixed number of supersteps, used to test
    /// the master-driven termination path and global broadcast.
    struct CountDown {
        limit: usize,
    }

    impl VertexProgram for CountDown {
        type Value = usize;
        type Message = ();
        type Aggregate = usize;
        type Global = usize;

        fn compute(&self, ctx: &mut Context<'_, Self>, _v: u32, value: &mut usize, _msgs: &[()]) {
            // Record the global value observed this superstep; never vote to halt.
            *value = *ctx.global();
            ctx.aggregate(1);
        }

        fn merge_aggregates(&self, a: usize, b: usize) -> usize {
            a + b
        }

        fn master_compute(&self, superstep: usize, agg: usize, _g: &usize) -> MasterOutcome<usize> {
            assert!(agg > 0);
            if superstep + 1 >= self.limit {
                MasterOutcome::Halt
            } else {
                MasterOutcome::Continue(superstep + 1)
            }
        }
    }

    #[test]
    fn master_halt_and_global_broadcast() {
        let topology = TopologyBuilder::new(4).build();
        let mut engine = Engine::new(
            CountDown { limit: 3 },
            topology,
            vec![0usize; 4],
            EngineConfig::new(2, 100),
        );
        let steps = engine.run();
        assert_eq!(steps, 3);
        // In the last superstep (index 2) vertices observed the global set after superstep 1,
        // which is 2.
        assert!(engine.values().iter().all(|&v| v == 2));
        assert_eq!(engine.metrics().num_supersteps(), 3);
    }

    #[test]
    fn value_accessor_matches_values_order() {
        let topology = TopologyBuilder::new(7).build();
        let initial: Vec<u32> = (0..7).map(|v| v * 10).collect();
        let engine = Engine::new(
            MinLabel,
            topology,
            initial.clone(),
            EngineConfig::new(3, 10),
        );
        for v in 0..7u32 {
            assert_eq!(*engine.value(v), initial[v as usize]);
        }
        assert_eq!(engine.values(), initial);
    }

    #[test]
    fn into_parts_returns_everything() {
        let topology = two_components_topology();
        let mut engine = Engine::new(
            MinLabel,
            topology,
            (0..5).collect(),
            EngineConfig::new(2, 50),
        );
        engine.run();
        let (values, _global, metrics) = engine.into_parts();
        assert_eq!(values, vec![0, 1, 0, 1, 0]);
        assert!(metrics.num_supersteps() > 0);
    }

    #[test]
    #[should_panic(expected = "one initial value per vertex")]
    fn mismatched_initial_values_panic() {
        let topology = TopologyBuilder::new(3).build();
        let _ = Engine::new(MinLabel, topology, vec![0u32; 2], EngineConfig::new(1, 1));
    }
}
