//! # shp-vertex-centric
//!
//! A Giraph-style vertex-centric Bulk Synchronous Parallel (BSP) engine.
//!
//! The SHP paper implements its partitioner on Apache Giraph: the input graph is stored as a
//! collection of vertices distributed over workers, computation proceeds in *supersteps*
//! separated by synchronization barriers, vertices exchange messages that are delivered at the
//! start of the next superstep, and a *master* aggregates global state (the swap matrix /
//! move-probability histograms) between supersteps.
//!
//! This crate reproduces that execution model in-process:
//!
//! * [`VertexProgram`] — the user-defined per-vertex compute function, message combiner,
//!   aggregate merge, and master compute, mirroring Giraph's `Computation`,
//!   `MessageCombiner`, `Aggregator`, and `MasterCompute`.
//! * [`Engine`] — distributes vertices over a configurable number of simulated workers
//!   (vertex `v` lives on worker `v mod W`, as with Giraph's random vertex distribution),
//!   runs each superstep's per-worker compute on one real scoped thread per worker (merging
//!   worker results in worker-index order, so outcomes never depend on thread interleaving),
//!   routes messages between workers, and applies combiners.
//! * [`ExecutionMetrics`] — per-superstep accounting of messages, bytes, and local-vs-remote
//!   traffic, so the communication-complexity claims of Section 3.3 of the paper can be
//!   checked quantitatively even though no real network is involved.
//!
//! The engine is deliberately independent of the partitioner: the unit tests run classical
//! vertex-centric algorithms (connected components, degree counting) on it, and
//! `shp-core::distributed` builds the four-superstep SHP iteration (Figure 3 of the paper)
//! on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod engine;
pub mod metrics;
pub mod program;
pub mod routing;
pub mod topology;

pub use context::Context;
pub use engine::{Engine, EngineConfig};
pub use metrics::{ExecutionMetrics, SuperstepMetrics};
pub use program::{MasterOutcome, VertexProgram};
pub use topology::{Topology, TopologyBuilder};
