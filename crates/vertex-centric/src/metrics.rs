//! Communication and execution accounting.
//!
//! Because the engine simulates a Giraph cluster in-process, the interesting "distributed"
//! quantities — how many messages cross worker boundaries, how many bytes move per superstep,
//! how balanced the per-worker load is — are recorded explicitly instead of being implied by
//! network traffic. Section 3.3 of the SHP paper bounds communication by `O(fanout · |E|)` per
//! iteration; the benchmarks verify that bound against these counters.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters for a single superstep.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuperstepMetrics {
    /// Superstep index (0-based).
    pub superstep: usize,
    /// Number of vertices whose compute function ran.
    pub active_vertices: usize,
    /// Total messages sent during the superstep.
    pub messages_sent: u64,
    /// Messages whose destination vertex lives on a different worker than the sender.
    pub remote_messages: u64,
    /// Total estimated bytes of all messages sent.
    pub bytes_sent: u64,
    /// Estimated bytes of remote messages only.
    pub remote_bytes: u64,
    /// Messages eliminated by the combiner before delivery.
    pub combined_messages: u64,
    /// Wall-clock duration of the superstep (compute + routing).
    #[serde(with = "duration_micros")]
    pub duration: Duration,
    /// Number of vertices processed by the busiest worker (load-balance indicator).
    pub max_worker_vertices: usize,
}

/// Counters for an entire engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionMetrics {
    /// Number of simulated workers.
    pub num_workers: usize,
    /// Per-superstep counters in execution order.
    pub supersteps: Vec<SuperstepMetrics>,
}

impl ExecutionMetrics {
    /// Creates an empty metrics record for a run with the given worker count.
    pub fn new(num_workers: usize) -> Self {
        ExecutionMetrics {
            num_workers,
            supersteps: Vec::new(),
        }
    }

    /// Number of supersteps executed.
    pub fn num_supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Total messages sent across all supersteps.
    pub fn total_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.messages_sent).sum()
    }

    /// Total messages that crossed a worker boundary.
    pub fn total_remote_messages(&self) -> u64 {
        self.supersteps.iter().map(|s| s.remote_messages).sum()
    }

    /// Total estimated bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.supersteps.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total estimated bytes that crossed a worker boundary.
    pub fn total_remote_bytes(&self) -> u64 {
        self.supersteps.iter().map(|s| s.remote_bytes).sum()
    }

    /// Total wall-clock time across supersteps.
    pub fn total_duration(&self) -> Duration {
        self.supersteps.iter().map(|s| s.duration).sum()
    }

    /// "Total time" in the paper's sense for Figure 5b: wall-clock run time multiplied by the
    /// number of workers (machines), i.e. aggregate machine-time consumed.
    pub fn total_machine_time(&self) -> Duration {
        self.total_duration() * self.num_workers as u32
    }

    /// Fraction of messages that were remote (0 when no messages were sent).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            0.0
        } else {
            self.total_remote_messages() as f64 / total as f64
        }
    }

    /// Appends the counters of another run (used when one logical algorithm performs several
    /// engine runs, e.g. recursive bisection levels).
    pub fn absorb(&mut self, other: &ExecutionMetrics) {
        self.supersteps.extend(other.supersteps.iter().cloned());
    }
}

mod duration_micros {
    //! Serializes [`std::time::Duration`] as integer microseconds so the metrics can be stored
    //! in JSON experiment reports.
    // Referenced by `#[serde(with = ...)]`; the vendored no-op derive does not expand to calls,
    // so these helpers look dead to rustc until a real serde backend is enabled.
    #![allow(dead_code)]
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let micros = u64::deserialize(d)?;
        Ok(Duration::from_micros(micros))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_superstep(i: usize, msgs: u64, remote: u64) -> SuperstepMetrics {
        SuperstepMetrics {
            superstep: i,
            active_vertices: 10,
            messages_sent: msgs,
            remote_messages: remote,
            bytes_sent: msgs * 8,
            remote_bytes: remote * 8,
            combined_messages: 0,
            duration: Duration::from_millis(5),
            max_worker_vertices: 4,
        }
    }

    #[test]
    fn totals_sum_over_supersteps() {
        let mut m = ExecutionMetrics::new(4);
        m.supersteps.push(sample_superstep(0, 100, 75));
        m.supersteps.push(sample_superstep(1, 50, 10));
        assert_eq!(m.num_supersteps(), 2);
        assert_eq!(m.total_messages(), 150);
        assert_eq!(m.total_remote_messages(), 85);
        assert_eq!(m.total_bytes(), 1200);
        assert_eq!(m.total_remote_bytes(), 680);
        assert_eq!(m.total_duration(), Duration::from_millis(10));
        assert_eq!(m.total_machine_time(), Duration::from_millis(40));
        assert!((m.remote_fraction() - 85.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_have_zero_remote_fraction() {
        let m = ExecutionMetrics::new(2);
        assert_eq!(m.remote_fraction(), 0.0);
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.total_duration(), Duration::ZERO);
    }

    #[test]
    fn absorb_concatenates_supersteps() {
        let mut a = ExecutionMetrics::new(4);
        a.supersteps.push(sample_superstep(0, 10, 5));
        let mut b = ExecutionMetrics::new(4);
        b.supersteps.push(sample_superstep(0, 20, 5));
        b.supersteps.push(sample_superstep(1, 30, 15));
        a.absorb(&b);
        assert_eq!(a.num_supersteps(), 3);
        assert_eq!(a.total_messages(), 60);
    }
}
