//! The [`VertexProgram`] trait: the user-defined part of a vertex-centric computation.

use crate::context::Context;

/// Decision returned by [`VertexProgram::master_compute`] after every superstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MasterOutcome<G> {
    /// Continue with the next superstep, broadcasting the given global value to all vertices.
    Continue(G),
    /// Stop the computation after this superstep, leaving the previous global value in place.
    Halt,
}

/// A vertex-centric program in the Pregel/Giraph mold.
///
/// Types:
/// * `Value` — mutable per-vertex state (e.g. current bucket, cached neighbor data).
/// * `Message` — messages exchanged along edges; delivered at the next superstep.
/// * `Aggregate` — per-superstep aggregation contributed by vertices and merged pairwise,
///   corresponding to Giraph aggregators (SHP uses it for the swap matrix / gain histograms).
/// * `Global` — the value computed by the master from the merged aggregate and broadcast to
///   every vertex for the next superstep (SHP uses it for move probabilities).
///
/// The engine calls [`compute`](VertexProgram::compute) for every *active* vertex each
/// superstep. A vertex is active if it received a message or has not voted to halt.
pub trait VertexProgram: Sync {
    /// Mutable per-vertex state.
    type Value: Clone + Send + Sync;
    /// Message type exchanged between vertices.
    type Message: Clone + Send + Sync;
    /// Per-superstep aggregate contributed by vertices, merged pairwise by the engine.
    type Aggregate: Clone + Send + Default;
    /// Global value computed by the master and visible to every vertex in the next superstep.
    type Global: Clone + Send + Sync + Default;

    /// Per-vertex compute function executed once per superstep for every active vertex.
    fn compute(
        &self,
        ctx: &mut Context<'_, Self>,
        vertex: u32,
        value: &mut Self::Value,
        messages: &[Self::Message],
    );

    /// Optional message combiner: when two messages target the same destination vertex they may
    /// be merged into one, reducing traffic (Giraph's `MessageCombiner`). Returning `None`
    /// (the default) disables combining.
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }

    /// Merges two partial aggregates. Must be associative and commutative.
    fn merge_aggregates(&self, a: Self::Aggregate, b: Self::Aggregate) -> Self::Aggregate;

    /// Master compute hook, run after every superstep with the merged aggregate. Returns the
    /// global value for the next superstep or halts the computation.
    fn master_compute(
        &self,
        superstep: usize,
        aggregate: Self::Aggregate,
        previous_global: &Self::Global,
    ) -> MasterOutcome<Self::Global>;

    /// Estimated wire size of a message in bytes, used for communication accounting only.
    fn message_size(&self, _message: &Self::Message) -> usize {
        std::mem::size_of::<Self::Message>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_outcome_equality() {
        let a: MasterOutcome<u32> = MasterOutcome::Continue(5);
        let b: MasterOutcome<u32> = MasterOutcome::Continue(5);
        assert_eq!(a, b);
        assert_ne!(a, MasterOutcome::Halt);
    }
}
