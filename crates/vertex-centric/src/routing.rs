//! Message buffers and routing between simulated workers.

/// Outgoing message buffers of one worker during one superstep, bucketed by destination worker.
///
/// The buffers double as the communication accounting point: every `push` records whether the
/// destination vertex lives on the sending worker (local) or on another worker (remote), and
/// how many bytes the message would occupy on the wire.
#[derive(Debug)]
pub struct WorkerOutbox<M> {
    /// `buffers[w]` holds `(destination_vertex, message)` pairs addressed to worker `w`.
    buffers: Vec<Vec<(u32, M)>>,
    /// Index of the sending worker (used to classify local vs. remote).
    sender: usize,
    /// Total messages pushed.
    pub messages: u64,
    /// Messages addressed to a different worker.
    pub remote_messages: u64,
    /// Total estimated bytes pushed.
    pub bytes: u64,
    /// Estimated bytes addressed to a different worker.
    pub remote_bytes: u64,
}

impl<M> WorkerOutbox<M> {
    /// Creates an empty outbox for `sender` in a cluster of `num_workers` workers.
    pub fn new(sender: usize, num_workers: usize) -> Self {
        WorkerOutbox {
            buffers: (0..num_workers).map(|_| Vec::new()).collect(),
            sender,
            messages: 0,
            remote_messages: 0,
            bytes: 0,
            remote_bytes: 0,
        }
    }

    /// Number of workers the outbox can address.
    pub fn num_workers(&self) -> usize {
        self.buffers.len()
    }

    /// Queues a message for `dest_vertex`, recording its estimated `size` in bytes.
    pub fn push(&mut self, dest_vertex: u32, message: M, size: usize) {
        let dest_worker = dest_vertex as usize % self.buffers.len();
        self.messages += 1;
        self.bytes += size as u64;
        if dest_worker != self.sender {
            self.remote_messages += 1;
            self.remote_bytes += size as u64;
        }
        self.buffers[dest_worker].push((dest_vertex, message));
    }

    /// Consumes the outbox, returning the per-destination-worker buffers.
    pub fn into_buffers(self) -> Vec<Vec<(u32, M)>> {
        self.buffers
    }
}

/// Routes the outboxes of all workers into per-destination-worker inboxes.
///
/// `inboxes[w]` receives, in sender-worker order, every message addressed to a vertex owned by
/// worker `w`. The deterministic ordering (sender worker index, then send order) keeps engine
/// runs reproducible.
pub fn route<M>(outboxes: Vec<WorkerOutbox<M>>) -> Vec<Vec<(u32, M)>> {
    let num_workers = outboxes.first().map_or(0, |o| o.num_workers());
    let mut inboxes: Vec<Vec<(u32, M)>> = (0..num_workers).map(|_| Vec::new()).collect();
    let mut all_buffers: Vec<Vec<Vec<(u32, M)>>> =
        outboxes.into_iter().map(|o| o.into_buffers()).collect();
    for dest in 0..num_workers {
        for sender_buffers in all_buffers.iter_mut() {
            inboxes[dest].append(&mut sender_buffers[dest]);
        }
    }
    inboxes
}

/// Groups an inbox by destination vertex, applying an optional combiner.
///
/// Returns a vector indexed by the worker-local vertex index (`vertex / num_workers`), where
/// each entry lists the messages for that vertex. The second return value is the number of
/// messages eliminated by combining.
pub fn group_by_vertex<M, F>(
    inbox: Vec<(u32, M)>,
    num_workers: usize,
    local_vertex_count: usize,
    combiner: F,
) -> (Vec<Vec<M>>, u64)
where
    F: Fn(&M, &M) -> Option<M>,
{
    let mut grouped: Vec<Vec<M>> = (0..local_vertex_count).map(|_| Vec::new()).collect();
    let mut combined = 0u64;
    for (vertex, message) in inbox {
        let local = vertex as usize / num_workers;
        let slot = &mut grouped[local];
        if let Some(last) = slot.last() {
            if let Some(merged) = combiner(last, &message) {
                *slot.last_mut().expect("slot non-empty") = merged;
                combined += 1;
                continue;
            }
        }
        slot.push(message);
    }
    (grouped, combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_classifies_local_and_remote() {
        let mut outbox: WorkerOutbox<u64> = WorkerOutbox::new(0, 2);
        outbox.push(0, 10, 8); // vertex 0 -> worker 0 (local)
        outbox.push(1, 20, 8); // vertex 1 -> worker 1 (remote)
        outbox.push(2, 30, 8); // vertex 2 -> worker 0 (local)
        outbox.push(3, 40, 8); // vertex 3 -> worker 1 (remote)
        assert_eq!(outbox.messages, 4);
        assert_eq!(outbox.remote_messages, 2);
        assert_eq!(outbox.bytes, 32);
        assert_eq!(outbox.remote_bytes, 16);
        let buffers = outbox.into_buffers();
        assert_eq!(buffers[0], vec![(0, 10), (2, 30)]);
        assert_eq!(buffers[1], vec![(1, 20), (3, 40)]);
    }

    #[test]
    fn route_concatenates_in_sender_order() {
        let mut o0: WorkerOutbox<&str> = WorkerOutbox::new(0, 2);
        o0.push(1, "from0", 1);
        let mut o1: WorkerOutbox<&str> = WorkerOutbox::new(1, 2);
        o1.push(1, "from1", 1);
        o1.push(0, "also-from1", 1);
        let inboxes = route(vec![o0, o1]);
        assert_eq!(inboxes[0], vec![(0, "also-from1")]);
        assert_eq!(inboxes[1], vec![(1, "from0"), (1, "from1")]);
    }

    #[test]
    fn group_by_vertex_without_combiner() {
        let inbox = vec![(0u32, 1u32), (2, 2), (0, 3)];
        // 2 workers; this is worker 0 owning vertices 0 and 2 (local indices 0 and 1).
        let (grouped, combined) = group_by_vertex(inbox, 2, 2, |_, _| None);
        assert_eq!(grouped[0], vec![1, 3]);
        assert_eq!(grouped[1], vec![2]);
        assert_eq!(combined, 0);
    }

    #[test]
    fn group_by_vertex_with_summing_combiner() {
        let inbox = vec![(0u32, 1u32), (0, 2), (0, 3), (2, 10)];
        let (grouped, combined) = group_by_vertex(inbox, 2, 2, |a, b| Some(a + b));
        assert_eq!(grouped[0], vec![6]);
        assert_eq!(grouped[1], vec![10]);
        assert_eq!(combined, 2);
    }

    #[test]
    fn route_empty_outboxes() {
        let inboxes: Vec<Vec<(u32, u8)>> = route(Vec::new());
        assert!(inboxes.is_empty());
    }
}
