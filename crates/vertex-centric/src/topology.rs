//! Engine-side graph topology: a CSR of out-neighbors per vertex.
//!
//! The topology is directed from the engine's point of view; for the bipartite SHP graph the
//! caller adds both directions (data → query and query → data) so that messages can flow both
//! ways, matching how Giraph stores the bipartite graph as undirected adjacency.

/// Immutable CSR adjacency used by the [`crate::Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
}

impl Topology {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Out-neighbors of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        &self.neighbors[start..end]
    }

    /// Out-degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }
}

/// Incremental builder for a [`Topology`].
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    adjacency: Vec<Vec<u32>>,
}

impl TopologyBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        TopologyBuilder {
            adjacency: vec![Vec::new(); num_vertices],
        }
    }

    /// Adds a directed edge `from → to`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: u32, to: u32) {
        assert!(
            (to as usize) < self.adjacency.len(),
            "edge target {to} out of range"
        );
        self.adjacency[from as usize].push(to);
    }

    /// Adds both directions of an undirected edge.
    pub fn add_undirected_edge(&mut self, a: u32, b: u32) {
        self.add_edge(a, b);
        self.add_edge(b, a);
    }

    /// Sets the full out-neighbor list of a vertex at once (replacing any previous edges).
    pub fn set_neighbors(&mut self, v: u32, neighbors: Vec<u32>) {
        for &n in &neighbors {
            assert!(
                (n as usize) < self.adjacency.len(),
                "edge target {n} out of range"
            );
        }
        self.adjacency[v as usize] = neighbors;
    }

    /// Finalizes the builder into an immutable CSR topology.
    pub fn build(self) -> Topology {
        let n = self.adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let total: usize = self.adjacency.iter().map(|a| a.len()).sum();
        let mut neighbors = Vec::with_capacity(total);
        for adj in &self.adjacency {
            neighbors.extend_from_slice(adj);
            offsets.push(neighbors.len() as u64);
        }
        Topology { offsets, neighbors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_adjacency() {
        let mut b = TopologyBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_undirected_edge(2, 3);
        let t = b.build();
        assert_eq!(t.num_vertices(), 4);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.neighbors(2), &[3]);
        assert_eq!(t.neighbors(3), &[2]);
        assert_eq!(t.degree(1), 0);
    }

    #[test]
    fn set_neighbors_replaces_existing() {
        let mut b = TopologyBuilder::new(3);
        b.add_edge(0, 1);
        b.set_neighbors(0, vec![2]);
        let t = b.build();
        assert_eq!(t.neighbors(0), &[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = TopologyBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn empty_topology() {
        let t = TopologyBuilder::new(0).build();
        assert_eq!(t.num_vertices(), 0);
        assert_eq!(t.num_edges(), 0);
    }
}
