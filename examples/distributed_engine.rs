//! Running SHP on the vertex-centric (Giraph-style) engine and inspecting the communication
//! metrics per superstep — the distributed execution path of Figure 3 in the paper.
//!
//! Run with: `cargo run --release --example distributed_engine`

use shp::core::{partition_distributed, ShpConfig};
use shp::datagen::{social_graph, SocialGraphConfig};

fn main() {
    let graph = social_graph(&SocialGraphConfig {
        num_users: 10_000,
        seed: 5,
        ..Default::default()
    });
    println!(
        "graph: {} users, {} edges; partitioning into 32 buckets on 4 simulated workers\n",
        graph.num_data(),
        graph.num_edges()
    );

    let config = ShpConfig::recursive_bisection(32).with_seed(5);
    let result = partition_distributed(&graph, &config, 4).expect("valid configuration");

    println!("final fanout   : {:.3}", result.final_fanout);
    println!("iterations     : {}", result.history.len());
    println!("supersteps     : {}", result.metrics.num_supersteps());
    println!("messages sent  : {}", result.metrics.total_messages());
    println!(
        "remote messages: {} ({:.0}%)",
        result.metrics.total_remote_messages(),
        result.metrics.remote_fraction() * 100.0
    );
    println!("bytes sent     : {}", result.metrics.total_bytes());
    println!("wall time      : {:.2?}", result.elapsed);

    println!("\nfanout per iteration (first 10):");
    for stat in result.history.iter().take(10) {
        println!(
            "  iteration {:>2}: fanout {:.3}, moved {:>6}",
            stat.iteration, stat.fanout, stat.moved
        );
    }
}
