//! Incremental re-partitioning (Section 5 of the paper): when the workload changes slightly, a
//! production system cannot afford to move most of its data. SHP handles this by starting from
//! the previous partition and penalizing movement.
//!
//! Run with: `cargo run --release --example incremental_repartition`

use shp::core::{partition_incremental, partition_recursive, IncrementalConfig, ShpConfig};
use shp::datagen::{social_graph, SocialGraphConfig};
use shp::hypergraph::average_fanout;

fn main() {
    let servers = 16;
    // The original workload and its SHP partition.
    let original = social_graph(&SocialGraphConfig {
        num_users: 8_000,
        seed: 11,
        ..Default::default()
    });
    let config = ShpConfig::recursive_bisection(servers).with_seed(11);
    let baseline = partition_recursive(&original, &config).expect("valid configuration");
    println!(
        "original workload fanout: {:.3}",
        baseline.report.final_fanout
    );

    // The workload evolves: a new crop of users and friendships (same user universe here; in
    // production the assignment of new ids would be extended by hashing).
    let evolved = social_graph(&SocialGraphConfig {
        num_users: 8_000,
        avg_degree: 22,
        seed: 12,
        ..Default::default()
    });
    println!(
        "evolved workload fanout under the old partition: {:.3}",
        average_fanout(&evolved, &baseline.partition)
    );

    // Full recomputation vs incremental repair.
    let config_k = ShpConfig::direct(servers).with_seed(11);
    let full = shp::core::partition_direct(&evolved, &config_k).expect("valid configuration");
    let incremental = partition_incremental(
        &evolved,
        &config_k,
        &IncrementalConfig {
            movement_penalty: 0.2,
            max_moved_fraction: 0.2,
            max_moves: None,
        },
        &baseline.partition,
    )
    .expect("matching partition");

    let full_moved = full.partition.hamming_distance(&baseline.partition);
    let incremental_moved = incremental.partition.hamming_distance(&baseline.partition);
    println!(
        "\nfull recomputation : fanout {:.3}, {} of {} records moved",
        full.report.final_fanout,
        full_moved,
        evolved.num_data()
    );
    println!(
        "incremental update : fanout {:.3}, {} of {} records moved",
        incremental.report.final_fanout,
        incremental_moved,
        evolved.num_data()
    );
    println!(
        "\nthe incremental update recovers most of the quality while moving {:.0}% less data",
        (1.0 - incremental_moved as f64 / full_moved.max(1) as f64) * 100.0
    );
}
