//! Live repartition under traffic: fanout drops mid-run with no serving gap.
//!
//! Boots the `shp-serving` engine on a *random* placement of a social multiget workload,
//! hammers it with concurrent clients, and — while traffic is flowing — installs an SHP-2
//! repartition with one atomic generation swap. The per-decile fanout timeline printed at the
//! end shows the fanout collapsing the moment the swap lands, and the run asserts that every
//! single multiget was answered correctly across the swap: no serving gap, no dropped or
//! double-served key.
//!
//! Run with: `cargo run --release --example live_repartition`

use shp::baselines::full_registry;
use shp::core::api::{NoopObserver, PartitionSpec};
use shp::datagen::{social_graph, SocialGraphConfig};
use shp::hypergraph::average_fanout;
use shp::serving::{open_loop_schedule, value_of, EngineConfig, ServingEngine, WorkloadConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn main() {
    let shards = 16u32;
    let graph = social_graph(&SocialGraphConfig {
        num_users: 4_000,
        avg_degree: 12,
        ..Default::default()
    });

    let registry = full_registry();
    let spec = PartitionSpec::new(shards).with_seed(7);
    let random = registry
        .run("random", &graph, &spec, &mut NoopObserver)
        .expect("valid spec")
        .partition;
    println!(
        "serving {} keys on {shards} shards; random placement has average fanout {:.2}",
        graph.num_data(),
        average_fanout(&graph, &random)
    );

    // Plan the repartition off the serving path (in production this is the nightly SHP job).
    // Any registry algorithm works here — the serving engine warm-starts from the outcome.
    let shp = registry
        .run("shp2", &graph, &spec, &mut NoopObserver)
        .expect("valid spec");
    println!(
        "planned SHP-2 placement with average fanout {:.2}",
        shp.fanout
    );

    let engine = ServingEngine::new(&random, EngineConfig::default()).expect("valid partition");
    let workload = WorkloadConfig {
        arrival_rate: 250.0,
        duration: 60.0,
        ..Default::default()
    };
    let events = open_loop_schedule(graph.num_queries(), &workload);
    println!(
        "replaying {} multigets with 4 concurrent clients...\n",
        events.len()
    );

    // Clients record (service order, fanout, epoch) per query; the swapper installs the new
    // placement once half the schedule has been served. Ordering by the global service
    // counter (not arrival time) makes the timeline reflect what the engine saw, since the
    // concurrent clients each own a contiguous slice of the arrival schedule.
    let progress = AtomicUsize::new(0);
    let swap_at = events.len() / 2;
    let observations: Mutex<Vec<(usize, u32, u64)>> = Mutex::new(Vec::with_capacity(events.len()));
    let chunk = events.len().div_ceil(4).max(1);
    std::thread::scope(|scope| {
        let engine = &engine;
        let graph = &graph;
        let progress = &progress;
        let observations = &observations;
        let shp = &shp;
        scope.spawn(move || {
            while progress.load(Ordering::Relaxed) < swap_at {
                std::thread::yield_now();
            }
            let epoch = engine.warm_start(shp).expect("swap must succeed");
            println!("*** installed SHP-2 placement at epoch {epoch}, traffic uninterrupted ***");
        });
        for slice in events.chunks(chunk) {
            scope.spawn(move || {
                let mut local = Vec::with_capacity(slice.len());
                for event in slice {
                    let keys = graph.query_neighbors(event.query);
                    let result = engine
                        .multiget(keys)
                        .expect("multiget must not fail mid-swap");
                    // Verify the multiget: every distinct requested key exactly once, with the
                    // correct record — a dropped or double-served key during the swap would
                    // fail here.
                    let mut expected: Vec<u32> = keys.to_vec();
                    expected.sort_unstable();
                    expected.dedup();
                    assert_eq!(
                        result.values.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
                        expected,
                        "multiget coverage broke during the live swap"
                    );
                    for &(k, v) in &result.values {
                        assert_eq!(v, value_of(k), "record corrupted during the live swap");
                    }
                    let sequence = progress.fetch_add(1, Ordering::Relaxed);
                    local.push((sequence, result.fanout, result.epoch));
                }
                observations.lock().unwrap().extend(local);
            });
        }
    });

    let mut timeline = observations.into_inner().unwrap();
    timeline.sort_unstable_by_key(|&(sequence, _, _)| sequence);
    println!("\nfanout timeline (mean per decile of the run):");
    let decile = timeline.len().div_ceil(10).max(1);
    for (i, window) in timeline.chunks(decile).enumerate() {
        let mean_fanout =
            window.iter().map(|&(_, f, _)| f as f64).sum::<f64>() / window.len() as f64;
        let epochs: (u64, u64) = window
            .iter()
            .fold((u64::MAX, 0), |(lo, hi), &(_, _, e)| (lo.min(e), hi.max(e)));
        let bar = "#".repeat((mean_fanout * 4.0).round() as usize);
        println!(
            "  {:>3}0% | mean fanout {mean_fanout:>5.2} | epochs {}..={} | {bar}",
            i + 1,
            epochs.0,
            epochs.1
        );
    }

    let report = engine.report();
    assert_eq!(report.queries, events.len() as u64, "serving gap detected");
    println!("\n{report}");
    println!(
        "\nall {} multigets answered with verified records across the swap — no serving gap",
        report.queries
    );
}
