//! Comparing the optimization objectives of Section 3.1: probabilistic fanout (p = 0.5),
//! direct fanout (p → 1), and the clique-net objective (p → 0) — the experiment behind
//! Figure 8 of the paper, on a single dataset.
//!
//! Run with: `cargo run --release --example objective_comparison`

use shp::core::{partition_recursive, ObjectiveKind, ShpConfig};
use shp::datagen::Dataset;

fn main() {
    let graph = Dataset::SocEpinions
        .generate(0.05, 3)
        .filter_small_queries(2);
    println!(
        "soc-Epinions stand-in: |Q| = {}, |D| = {}, |E| = {}\n",
        graph.num_queries(),
        graph.num_data(),
        graph.num_edges()
    );

    let objectives = [
        (
            "p-fanout (p = 0.5)",
            ObjectiveKind::ProbabilisticFanout { p: 0.5 },
        ),
        ("direct fanout (p = 1)", ObjectiveKind::Fanout),
        ("clique-net (p -> 0)", ObjectiveKind::CliqueNet),
    ];
    println!("{:<26}{:<8}{:<12}", "objective", "k", "final fanout");
    for k in [8u32, 32] {
        for (name, objective) in objectives {
            let config = ShpConfig::recursive_bisection(k)
                .with_objective(objective)
                .with_seed(3);
            let result = partition_recursive(&graph, &config).expect("valid configuration");
            println!("{:<26}{:<8}{:<12.3}", name, k, result.report.final_fanout);
        }
        println!();
    }
    println!("As in the paper, optimizing p-fanout with p = 0.5 gives the lowest real fanout;");
    println!("direct fanout gets stuck in local minima and clique-net is usually in between.");
}
