//! Quickstart: partition a small hypergraph through the unified registry and compare two
//! algorithms on the same graph.
//!
//! Run with: `cargo run --release --example quickstart`

use shp::baselines::full_registry;
use shp::core::api::{NoopObserver, PartitionSpec};
use shp::hypergraph::GraphBuilder;

fn main() {
    // The storage-sharding example of Figure 1 in the paper: three queries over six data
    // records. Query 0 needs records {0, 1, 5}, query 1 needs {0, 1, 2, 3}, query 2 needs
    // {3, 4, 5}.
    let mut builder = GraphBuilder::new();
    builder.add_query([0, 1, 5]);
    builder.add_query([0, 1, 2, 3]);
    builder.add_query([3, 4, 5]);
    let graph = builder.build().expect("valid hyperedges");

    // Split the data records over two servers, minimizing average query fanout. Every
    // algorithm in the workspace sits behind the same trait, so comparing SHP against the
    // multilevel baseline is two registry lookups with one shared spec.
    let registry = full_registry();
    let spec = PartitionSpec::new(2).with_seed(42);
    for name in ["shp2", "multilevel"] {
        let partitioner = registry.get(name).expect("registered algorithm");
        let outcome = partitioner
            .partition(&graph, &spec, &mut NoopObserver)
            .expect("valid spec");
        println!(
            "{:<12} assignment {:?}  fanout {:.3}  p-fanout {:.3}  imbalance {:.3}  iterations {}",
            outcome.algorithm,
            outcome.partition.assignment(),
            outcome.fanout,
            outcome.p_fanout,
            outcome.imbalance,
            outcome.iterations
        );
        // The paper's example solution V1 = {1,2,3}, V2 = {4,5,6} (0-based {0,1,2} / {3,4,5})
        // achieves average fanout 5/3 ≈ 1.67; both partitioners should match that quality.
        assert!(
            outcome.fanout <= 5.0 / 3.0 + 1e-9,
            "{name} fanout {}",
            outcome.fanout
        );
    }
}
