//! Quickstart: partition a small hypergraph with SHP-2 and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use shp::core::{ShpConfig, SocialHashPartitioner};
use shp::hypergraph::{average_fanout, average_p_fanout, GraphBuilder};

fn main() {
    // The storage-sharding example of Figure 1 in the paper: three queries over six data
    // records. Query 0 needs records {0, 1, 5}, query 1 needs {0, 1, 2, 3}, query 2 needs
    // {3, 4, 5}.
    let mut builder = GraphBuilder::new();
    builder.add_query([0, 1, 5]);
    builder.add_query([0, 1, 2, 3]);
    builder.add_query([3, 4, 5]);
    let graph = builder.build().expect("valid hyperedges");

    // Split the data records over two servers, minimizing average query fanout.
    let config = ShpConfig::recursive_bisection(2).with_seed(42);
    let partitioner = SocialHashPartitioner::new(config).expect("valid configuration");
    let result = partitioner.partition(&graph);

    println!("bucket assignment: {:?}", result.partition.assignment());
    println!(
        "average fanout   : {:.3}",
        average_fanout(&graph, &result.partition)
    );
    println!(
        "average p-fanout : {:.3}",
        average_p_fanout(&graph, &result.partition, 0.5)
    );
    println!("imbalance        : {:.3}", result.partition.imbalance());
    println!("iterations       : {}", result.report.total_iterations());

    // The paper's example solution V1 = {1,2,3}, V2 = {4,5,6} (0-based {0,1,2} / {3,4,5})
    // achieves average fanout 5/3 ≈ 1.67; SHP should match that quality.
    assert!(average_fanout(&graph, &result.partition) <= 5.0 / 3.0 + 1e-9);
}
