//! SHP-2 (recursive bisection) versus SHP-k (direct k-way): the quality/run-time trade-off
//! discussed in Section 4.2.2 of the paper — SHP-2 is typically 5–10% worse in fanout but far
//! more scalable in the bucket count.
//!
//! Run with: `cargo run --release --example recursive_vs_direct`

use shp::core::{partition_direct, partition_recursive, ShpConfig};
use shp::datagen::Dataset;
use std::time::Instant;

fn main() {
    let graph = Dataset::SocPokec.generate(0.01, 1).filter_small_queries(2);
    println!(
        "soc-Pokec stand-in at 1% scale: |Q| = {}, |D| = {}, |E| = {}\n",
        graph.num_queries(),
        graph.num_data(),
        graph.num_edges()
    );
    println!(
        "{:<8}{:<10}{:<14}{:<14}{:<12}",
        "k", "variant", "fanout", "imbalance", "time"
    );

    for k in [8u32, 32, 128] {
        let start = Instant::now();
        let shp2 = partition_recursive(&graph, &ShpConfig::recursive_bisection(k).with_seed(1))
            .expect("valid configuration");
        let shp2_time = start.elapsed();

        let start = Instant::now();
        let shpk = partition_direct(&graph, &ShpConfig::direct(k).with_seed(1))
            .expect("valid configuration");
        let shpk_time = start.elapsed();

        println!(
            "{:<8}{:<10}{:<14.3}{:<14.3}{:<12.2?}",
            k, "SHP-2", shp2.report.final_fanout, shp2.report.imbalance, shp2_time
        );
        println!(
            "{:<8}{:<10}{:<14.3}{:<14.3}{:<12.2?}",
            k, "SHP-k", shpk.report.final_fanout, shpk.report.imbalance, shpk_time
        );
    }
}
