//! Storage sharding end to end: generate a social workload, shard it with SHP over 40 servers,
//! and measure how much the multi-get latency improves over random sharding (the motivating
//! application of the paper, Section 4.2.1).
//!
//! Run with: `cargo run --release --example storage_sharding`

use shp::baselines::full_registry;
use shp::core::api::{NoopObserver, PartitionSpec};
use shp::datagen::{social_graph, SocialGraphConfig};
use shp::sharding_sim::{LatencyModel, ShardedCluster};

fn main() {
    let servers = 40;
    // A Facebook-like workload: rendering a user's page fetches the user and all friends.
    let graph = social_graph(&SocialGraphConfig {
        num_users: 20_000,
        avg_degree: 20,
        avg_community_size: 120,
        cross_community_fraction: 0.08,
        seed: 7,
    });
    println!(
        "workload: {} users, {} fetch edges",
        graph.num_data(),
        graph.num_edges()
    );

    // Both placements come from the same unified registry — random sharding (the production
    // default before locality optimization) and social sharding with SHP-2.
    let registry = full_registry();
    let spec = PartitionSpec::new(servers).with_seed(7);
    let random = registry
        .run("random", &graph, &spec, &mut NoopObserver)
        .expect("valid spec");
    let shp = registry
        .run("shp2", &graph, &spec, &mut NoopObserver)
        .expect("valid spec");

    println!("random sharding fanout: {:.2}", random.fanout);
    println!("SHP sharding fanout   : {:.2}", shp.fanout);
    let (random, shp) = (random.partition, shp.partition);

    // Replay the workload against simulated clusters and compare latency percentiles.
    let model = LatencyModel::default();
    let random_report = ShardedCluster::from_partition(&random, model.clone()).replay(&graph, 1, 7);
    let shp_report = ShardedCluster::from_partition(&shp, model).replay(&graph, 1, 7);

    println!("\nlatency (in units of t, the mean single-request latency):");
    println!(
        "  random: mean {:.2}t  p50 {:.2}t  p99 {:.2}t",
        random_report.overall.mean, random_report.overall.p50, random_report.overall.p99
    );
    println!(
        "  SHP   : mean {:.2}t  p50 {:.2}t  p99 {:.2}t",
        shp_report.overall.mean, shp_report.overall.p50, shp_report.overall.p99
    );
    println!(
        "  mean latency reduction: {:.0}%",
        (1.0 - shp_report.overall.mean / random_report.overall.mean) * 100.0
    );
}
