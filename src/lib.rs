//! # shp — Social Hash Partitioner
//!
//! A Rust reproduction of *"Social Hash Partitioner: A Scalable Distributed Hypergraph
//! Partitioner"* (Kabiljo et al., VLDB 2017): a balanced k-way hypergraph partitioner that
//! minimizes query fanout by local search on the probabilistic-fanout objective, together with
//! the vertex-centric execution substrate, baseline partitioners, dataset generators, and a
//! storage-sharding simulator used to reproduce the paper's evaluation.
//!
//! Every partitioning algorithm in the workspace — the four SHP execution paths and the five
//! baselines — implements the unified [`core::api::Partitioner`] trait and is constructible by
//! name from the runtime [`core::api::AlgorithmRegistry`] (see
//! [`baselines::full_registry`]), returning one serializable
//! [`core::api::PartitionOutcome`] with typed [`core::ShpError`] failures throughout.
//!
//! This facade crate re-exports the member crates of the workspace under stable module names;
//! see the individual crates for full documentation:
//!
//! * [`hypergraph`] — graph data structures, partitions, metrics, IO.
//! * [`core`] — the SHP algorithm (SHP-k, SHP-2, distributed path, incremental updates) and
//!   the unified `api` module (trait, spec, outcome, registry, typed errors).
//! * [`vertex_centric`] — the Giraph-style BSP engine.
//! * [`datagen`] — synthetic dataset generators and the Table-1 registry.
//! * [`baselines`] — comparison partitioners (random, hash, greedy, label propagation,
//!   multilevel FM), all behind the unified trait, plus the full workspace registry.
//! * [`sharding_sim`] — the fanout-vs-latency storage sharding simulator.
//! * [`serving`] — the online partition-aware multiget serving engine with live repartition
//!   swap, warm-startable from any registry outcome.
//! * [`controller`] — the closed serve→observe→repartition loop: bounded access-trace
//!   collection on the serving hot path, a budgeted online repartition controller installing
//!   delta placements, and the hours-compressed drift scenario.
//! * [`telemetry`] — zero-dependency lock-free observability: sharded counters, log-linear
//!   histograms, hierarchical phase spans, a top-K access sketch, and Prometheus/JSON
//!   exporters; instrumented throughout the crates above.
//! * [`faults`] — deterministic, replayable fault injection for the serving tier: scripted
//!   shard crashes, slow-shard multipliers, per-request drops, and the retry/hedging policy
//!   driving replica failover.
//!
//! # Quickstart
//!
//! ```
//! use shp::baselines::full_registry;
//! use shp::core::api::{NoopObserver, PartitionSpec};
//! use shp::hypergraph::GraphBuilder;
//!
//! let mut builder = GraphBuilder::new();
//! builder.add_query([0, 1, 5]);
//! builder.add_query([0, 1, 2, 3]);
//! builder.add_query([3, 4, 5]);
//! let graph = builder.build().unwrap();
//!
//! // Any registered algorithm, same trait, same spec, same outcome type.
//! let registry = full_registry();
//! let spec = PartitionSpec::new(2).with_seed(42);
//! let shp2 = registry.run("shp2", &graph, &spec, &mut NoopObserver).unwrap();
//! let multilevel = registry.run("multilevel", &graph, &spec, &mut NoopObserver).unwrap();
//! println!("shp2 fanout {:.2} vs multilevel {:.2}", shp2.fanout, multilevel.fanout);
//! assert!(shp2.fanout <= 5.0 / 3.0 + 1e-9);
//! ```

#![forbid(unsafe_code)]

pub use shp_baselines as baselines;
pub use shp_controller as controller;
pub use shp_core as core;
pub use shp_datagen as datagen;
pub use shp_faults as faults;
pub use shp_hypergraph as hypergraph;
pub use shp_serving as serving;
pub use shp_sharding_sim as sharding_sim;
pub use shp_telemetry as telemetry;
pub use shp_vertex_centric as vertex_centric;
