//! # shp — Social Hash Partitioner
//!
//! A Rust reproduction of *"Social Hash Partitioner: A Scalable Distributed Hypergraph
//! Partitioner"* (Kabiljo et al., VLDB 2017): a balanced k-way hypergraph partitioner that
//! minimizes query fanout by local search on the probabilistic-fanout objective, together with
//! the vertex-centric execution substrate, baseline partitioners, dataset generators, and a
//! storage-sharding simulator used to reproduce the paper's evaluation.
//!
//! This facade crate re-exports the member crates of the workspace under stable module names;
//! see the individual crates for full documentation:
//!
//! * [`hypergraph`] — graph data structures, partitions, metrics, IO.
//! * [`core`] — the SHP algorithm (SHP-k, SHP-2, distributed path, incremental updates).
//! * [`vertex_centric`] — the Giraph-style BSP engine.
//! * [`datagen`] — synthetic dataset generators and the Table-1 registry.
//! * [`baselines`] — comparison partitioners (random, hash, greedy, label propagation,
//!   multilevel FM).
//! * [`sharding_sim`] — the fanout-vs-latency storage sharding simulator.
//! * [`serving`] — the online partition-aware multiget serving engine with live repartition
//!   swap.
//!
//! # Quickstart
//!
//! ```
//! use shp::core::{ShpConfig, SocialHashPartitioner};
//! use shp::hypergraph::GraphBuilder;
//!
//! let mut builder = GraphBuilder::new();
//! builder.add_query([0, 1, 5]);
//! builder.add_query([0, 1, 2, 3]);
//! builder.add_query([3, 4, 5]);
//! let graph = builder.build().unwrap();
//!
//! let partitioner = SocialHashPartitioner::new(ShpConfig::recursive_bisection(2)).unwrap();
//! let result = partitioner.partition(&graph);
//! println!("average fanout: {:.2}", result.report.final_fanout);
//! ```

#![forbid(unsafe_code)]

pub use shp_baselines as baselines;
pub use shp_core as core;
pub use shp_datagen as datagen;
pub use shp_hypergraph as hypergraph;
pub use shp_serving as serving;
pub use shp_sharding_sim as sharding_sim;
pub use shp_vertex_centric as vertex_centric;
