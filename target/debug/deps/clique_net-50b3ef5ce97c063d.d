/root/repo/target/debug/deps/clique_net-50b3ef5ce97c063d.d: crates/bench/benches/clique_net.rs Cargo.toml

/root/repo/target/debug/deps/libclique_net-50b3ef5ce97c063d.rmeta: crates/bench/benches/clique_net.rs Cargo.toml

crates/bench/benches/clique_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
