/root/repo/target/debug/deps/end_to_end-f0cc9a6195897da2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f0cc9a6195897da2: tests/end_to_end.rs

tests/end_to_end.rs:
