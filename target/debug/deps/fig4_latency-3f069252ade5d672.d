/root/repo/target/debug/deps/fig4_latency-3f069252ade5d672.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/debug/deps/fig4_latency-3f069252ade5d672: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
