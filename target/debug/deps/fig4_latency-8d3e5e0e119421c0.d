/root/repo/target/debug/deps/fig4_latency-8d3e5e0e119421c0.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/debug/deps/fig4_latency-8d3e5e0e119421c0: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
