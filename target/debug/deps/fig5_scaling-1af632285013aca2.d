/root/repo/target/debug/deps/fig5_scaling-1af632285013aca2.d: crates/bench/src/bin/fig5_scaling.rs

/root/repo/target/debug/deps/fig5_scaling-1af632285013aca2: crates/bench/src/bin/fig5_scaling.rs

crates/bench/src/bin/fig5_scaling.rs:
