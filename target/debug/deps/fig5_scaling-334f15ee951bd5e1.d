/root/repo/target/debug/deps/fig5_scaling-334f15ee951bd5e1.d: crates/bench/src/bin/fig5_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_scaling-334f15ee951bd5e1.rmeta: crates/bench/src/bin/fig5_scaling.rs Cargo.toml

crates/bench/src/bin/fig5_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
