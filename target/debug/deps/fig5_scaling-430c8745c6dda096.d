/root/repo/target/debug/deps/fig5_scaling-430c8745c6dda096.d: crates/bench/src/bin/fig5_scaling.rs

/root/repo/target/debug/deps/fig5_scaling-430c8745c6dda096: crates/bench/src/bin/fig5_scaling.rs

crates/bench/src/bin/fig5_scaling.rs:
