/root/repo/target/debug/deps/fig6_fanout_probability-6a2bfd506a227b4d.d: crates/bench/src/bin/fig6_fanout_probability.rs

/root/repo/target/debug/deps/fig6_fanout_probability-6a2bfd506a227b4d: crates/bench/src/bin/fig6_fanout_probability.rs

crates/bench/src/bin/fig6_fanout_probability.rs:
