/root/repo/target/debug/deps/fig6_fanout_probability-7c989663185d0d83.d: crates/bench/src/bin/fig6_fanout_probability.rs

/root/repo/target/debug/deps/fig6_fanout_probability-7c989663185d0d83: crates/bench/src/bin/fig6_fanout_probability.rs

crates/bench/src/bin/fig6_fanout_probability.rs:
