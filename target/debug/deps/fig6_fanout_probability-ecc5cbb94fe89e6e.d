/root/repo/target/debug/deps/fig6_fanout_probability-ecc5cbb94fe89e6e.d: crates/bench/src/bin/fig6_fanout_probability.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_fanout_probability-ecc5cbb94fe89e6e.rmeta: crates/bench/src/bin/fig6_fanout_probability.rs Cargo.toml

crates/bench/src/bin/fig6_fanout_probability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
