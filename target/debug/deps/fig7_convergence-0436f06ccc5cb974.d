/root/repo/target/debug/deps/fig7_convergence-0436f06ccc5cb974.d: crates/bench/src/bin/fig7_convergence.rs

/root/repo/target/debug/deps/fig7_convergence-0436f06ccc5cb974: crates/bench/src/bin/fig7_convergence.rs

crates/bench/src/bin/fig7_convergence.rs:
