/root/repo/target/debug/deps/fig7_convergence-775586c81e012939.d: crates/bench/src/bin/fig7_convergence.rs

/root/repo/target/debug/deps/fig7_convergence-775586c81e012939: crates/bench/src/bin/fig7_convergence.rs

crates/bench/src/bin/fig7_convergence.rs:
