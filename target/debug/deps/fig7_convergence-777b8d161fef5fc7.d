/root/repo/target/debug/deps/fig7_convergence-777b8d161fef5fc7.d: crates/bench/src/bin/fig7_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_convergence-777b8d161fef5fc7.rmeta: crates/bench/src/bin/fig7_convergence.rs Cargo.toml

crates/bench/src/bin/fig7_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
