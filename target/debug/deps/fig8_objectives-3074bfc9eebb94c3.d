/root/repo/target/debug/deps/fig8_objectives-3074bfc9eebb94c3.d: crates/bench/src/bin/fig8_objectives.rs

/root/repo/target/debug/deps/fig8_objectives-3074bfc9eebb94c3: crates/bench/src/bin/fig8_objectives.rs

crates/bench/src/bin/fig8_objectives.rs:
