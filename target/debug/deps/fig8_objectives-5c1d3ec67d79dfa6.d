/root/repo/target/debug/deps/fig8_objectives-5c1d3ec67d79dfa6.d: crates/bench/src/bin/fig8_objectives.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_objectives-5c1d3ec67d79dfa6.rmeta: crates/bench/src/bin/fig8_objectives.rs Cargo.toml

crates/bench/src/bin/fig8_objectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
