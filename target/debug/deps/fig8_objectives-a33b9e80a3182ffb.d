/root/repo/target/debug/deps/fig8_objectives-a33b9e80a3182ffb.d: crates/bench/src/bin/fig8_objectives.rs

/root/repo/target/debug/deps/fig8_objectives-a33b9e80a3182ffb: crates/bench/src/bin/fig8_objectives.rs

crates/bench/src/bin/fig8_objectives.rs:
