/root/repo/target/debug/deps/gain_computation-57e32ea7ceaca147.d: crates/bench/benches/gain_computation.rs Cargo.toml

/root/repo/target/debug/deps/libgain_computation-57e32ea7ceaca147.rmeta: crates/bench/benches/gain_computation.rs Cargo.toml

crates/bench/benches/gain_computation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
