/root/repo/target/debug/deps/histogram_swaps-9721e79f3312def7.d: crates/bench/benches/histogram_swaps.rs Cargo.toml

/root/repo/target/debug/deps/libhistogram_swaps-9721e79f3312def7.rmeta: crates/bench/benches/histogram_swaps.rs Cargo.toml

crates/bench/benches/histogram_swaps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
