/root/repo/target/debug/deps/partitioners-c952fe3175f3c4ab.d: crates/bench/benches/partitioners.rs Cargo.toml

/root/repo/target/debug/deps/libpartitioners-c952fe3175f3c4ab.rmeta: crates/bench/benches/partitioners.rs Cargo.toml

crates/bench/benches/partitioners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
