/root/repo/target/debug/deps/properties-023b34c10d4ed7f0.d: tests/properties.rs

/root/repo/target/debug/deps/properties-023b34c10d4ed7f0: tests/properties.rs

tests/properties.rs:
