/root/repo/target/debug/deps/proptest-2d8fad6de8c6acfb.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-2d8fad6de8c6acfb.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-2d8fad6de8c6acfb.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
