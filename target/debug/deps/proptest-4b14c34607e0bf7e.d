/root/repo/target/debug/deps/proptest-4b14c34607e0bf7e.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-4b14c34607e0bf7e: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
