/root/repo/target/debug/deps/rand_pcg-268a12e61ffd2f9d.d: vendor/rand_pcg/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_pcg-268a12e61ffd2f9d.rmeta: vendor/rand_pcg/src/lib.rs Cargo.toml

vendor/rand_pcg/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
