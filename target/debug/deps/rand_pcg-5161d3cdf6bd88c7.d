/root/repo/target/debug/deps/rand_pcg-5161d3cdf6bd88c7.d: vendor/rand_pcg/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_pcg-5161d3cdf6bd88c7.rmeta: vendor/rand_pcg/src/lib.rs Cargo.toml

vendor/rand_pcg/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
