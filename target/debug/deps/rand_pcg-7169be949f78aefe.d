/root/repo/target/debug/deps/rand_pcg-7169be949f78aefe.d: vendor/rand_pcg/src/lib.rs

/root/repo/target/debug/deps/librand_pcg-7169be949f78aefe.rlib: vendor/rand_pcg/src/lib.rs

/root/repo/target/debug/deps/librand_pcg-7169be949f78aefe.rmeta: vendor/rand_pcg/src/lib.rs

vendor/rand_pcg/src/lib.rs:
