/root/repo/target/debug/deps/rand_pcg-b613ae7444325445.d: vendor/rand_pcg/src/lib.rs

/root/repo/target/debug/deps/rand_pcg-b613ae7444325445: vendor/rand_pcg/src/lib.rs

vendor/rand_pcg/src/lib.rs:
