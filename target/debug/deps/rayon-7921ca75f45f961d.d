/root/repo/target/debug/deps/rayon-7921ca75f45f961d.d: vendor/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-7921ca75f45f961d.rmeta: vendor/rayon/src/lib.rs Cargo.toml

vendor/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
