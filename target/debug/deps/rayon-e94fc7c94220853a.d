/root/repo/target/debug/deps/rayon-e94fc7c94220853a.d: vendor/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-e94fc7c94220853a.rmeta: vendor/rayon/src/lib.rs Cargo.toml

vendor/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
