/root/repo/target/debug/deps/rayon-f2af4d35bdde06aa.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-f2af4d35bdde06aa: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
