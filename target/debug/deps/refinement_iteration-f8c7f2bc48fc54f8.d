/root/repo/target/debug/deps/refinement_iteration-f8c7f2bc48fc54f8.d: crates/bench/benches/refinement_iteration.rs Cargo.toml

/root/repo/target/debug/deps/librefinement_iteration-f8c7f2bc48fc54f8.rmeta: crates/bench/benches/refinement_iteration.rs Cargo.toml

crates/bench/benches/refinement_iteration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
