/root/repo/target/debug/deps/serving_router-0ce1c8bc3ebf59aa.d: crates/bench/benches/serving_router.rs Cargo.toml

/root/repo/target/debug/deps/libserving_router-0ce1c8bc3ebf59aa.rmeta: crates/bench/benches/serving_router.rs Cargo.toml

crates/bench/benches/serving_router.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
