/root/repo/target/debug/deps/shp-0b1788fb99ce38a8.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libshp-0b1788fb99ce38a8.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
