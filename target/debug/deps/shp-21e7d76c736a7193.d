/root/repo/target/debug/deps/shp-21e7d76c736a7193.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/shp-21e7d76c736a7193: crates/cli/src/main.rs

crates/cli/src/main.rs:
