/root/repo/target/debug/deps/shp-304fd609718f482f.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/shp-304fd609718f482f: crates/cli/src/main.rs

crates/cli/src/main.rs:
