/root/repo/target/debug/deps/shp-36a59221100eb90f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshp-36a59221100eb90f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
