/root/repo/target/debug/deps/shp-57c4136c1a264e0d.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libshp-57c4136c1a264e0d.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
