/root/repo/target/debug/deps/shp-7e06b9753770e02c.d: src/lib.rs

/root/repo/target/debug/deps/shp-7e06b9753770e02c: src/lib.rs

src/lib.rs:
