/root/repo/target/debug/deps/shp-94d960457a04cf4f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshp-94d960457a04cf4f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
