/root/repo/target/debug/deps/shp-e20eacee0db610de.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/shp-e20eacee0db610de: crates/cli/src/main.rs

crates/cli/src/main.rs:
