/root/repo/target/debug/deps/shp-eb8891ff2880b863.d: src/lib.rs

/root/repo/target/debug/deps/libshp-eb8891ff2880b863.rlib: src/lib.rs

/root/repo/target/debug/deps/libshp-eb8891ff2880b863.rmeta: src/lib.rs

src/lib.rs:
