/root/repo/target/debug/deps/shp-ed2aea5b3529bb76.d: src/lib.rs

/root/repo/target/debug/deps/libshp-ed2aea5b3529bb76.rlib: src/lib.rs

/root/repo/target/debug/deps/libshp-ed2aea5b3529bb76.rmeta: src/lib.rs

src/lib.rs:
