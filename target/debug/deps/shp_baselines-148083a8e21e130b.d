/root/repo/target/debug/deps/shp_baselines-148083a8e21e130b.d: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

/root/repo/target/debug/deps/libshp_baselines-148083a8e21e130b.rlib: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

/root/repo/target/debug/deps/libshp_baselines-148083a8e21e130b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

crates/baselines/src/lib.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/hashing.rs:
crates/baselines/src/label_propagation.rs:
crates/baselines/src/multilevel.rs:
crates/baselines/src/random.rs:
