/root/repo/target/debug/deps/shp_baselines-382c62e3daac0ba2.d: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

/root/repo/target/debug/deps/libshp_baselines-382c62e3daac0ba2.rlib: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

/root/repo/target/debug/deps/libshp_baselines-382c62e3daac0ba2.rmeta: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

crates/baselines/src/lib.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/hashing.rs:
crates/baselines/src/label_propagation.rs:
crates/baselines/src/multilevel.rs:
crates/baselines/src/random.rs:
