/root/repo/target/debug/deps/shp_baselines-4004afa945b790bf.d: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

/root/repo/target/debug/deps/shp_baselines-4004afa945b790bf: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

crates/baselines/src/lib.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/hashing.rs:
crates/baselines/src/label_propagation.rs:
crates/baselines/src/multilevel.rs:
crates/baselines/src/random.rs:
