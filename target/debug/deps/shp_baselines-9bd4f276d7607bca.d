/root/repo/target/debug/deps/shp_baselines-9bd4f276d7607bca.d: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs Cargo.toml

/root/repo/target/debug/deps/libshp_baselines-9bd4f276d7607bca.rmeta: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/hashing.rs:
crates/baselines/src/label_propagation.rs:
crates/baselines/src/multilevel.rs:
crates/baselines/src/random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
