/root/repo/target/debug/deps/shp_baselines-9fae4b6b52de4d38.d: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

/root/repo/target/debug/deps/shp_baselines-9fae4b6b52de4d38: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

crates/baselines/src/lib.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/hashing.rs:
crates/baselines/src/label_propagation.rs:
crates/baselines/src/multilevel.rs:
crates/baselines/src/random.rs:
