/root/repo/target/debug/deps/shp_baselines-a88ce261a1e7e7b4.d: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs Cargo.toml

/root/repo/target/debug/deps/libshp_baselines-a88ce261a1e7e7b4.rmeta: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/hashing.rs:
crates/baselines/src/label_propagation.rs:
crates/baselines/src/multilevel.rs:
crates/baselines/src/random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
