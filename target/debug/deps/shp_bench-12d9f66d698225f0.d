/root/repo/target/debug/deps/shp_bench-12d9f66d698225f0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshp_bench-12d9f66d698225f0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshp_bench-12d9f66d698225f0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
