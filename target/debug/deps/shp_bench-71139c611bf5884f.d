/root/repo/target/debug/deps/shp_bench-71139c611bf5884f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshp_bench-71139c611bf5884f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
