/root/repo/target/debug/deps/shp_bench-7e0fba136eb3b964.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshp_bench-7e0fba136eb3b964.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshp_bench-7e0fba136eb3b964.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
