/root/repo/target/debug/deps/shp_bench-9b5a7d64358de8af.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/shp_bench-9b5a7d64358de8af: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
