/root/repo/target/debug/deps/shp_bench-b5988625bc03e2e2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshp_bench-b5988625bc03e2e2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
