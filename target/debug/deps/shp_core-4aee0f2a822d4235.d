/root/repo/target/debug/deps/shp_core-4aee0f2a822d4235.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/distributed.rs crates/core/src/gains.rs crates/core/src/histogram.rs crates/core/src/incremental.rs crates/core/src/multidim.rs crates/core/src/neighbor_data.rs crates/core/src/objective.rs crates/core/src/recursive.rs crates/core/src/refinement.rs crates/core/src/report.rs crates/core/src/swap.rs Cargo.toml

/root/repo/target/debug/deps/libshp_core-4aee0f2a822d4235.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/distributed.rs crates/core/src/gains.rs crates/core/src/histogram.rs crates/core/src/incremental.rs crates/core/src/multidim.rs crates/core/src/neighbor_data.rs crates/core/src/objective.rs crates/core/src/recursive.rs crates/core/src/refinement.rs crates/core/src/report.rs crates/core/src/swap.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/direct.rs:
crates/core/src/distributed.rs:
crates/core/src/gains.rs:
crates/core/src/histogram.rs:
crates/core/src/incremental.rs:
crates/core/src/multidim.rs:
crates/core/src/neighbor_data.rs:
crates/core/src/objective.rs:
crates/core/src/recursive.rs:
crates/core/src/refinement.rs:
crates/core/src/report.rs:
crates/core/src/swap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
