/root/repo/target/debug/deps/shp_datagen-119427f31ceba832.d: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs Cargo.toml

/root/repo/target/debug/deps/libshp_datagen-119427f31ceba832.rmeta: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/erdos_renyi.rs:
crates/datagen/src/planted.rs:
crates/datagen/src/power_law.rs:
crates/datagen/src/registry.rs:
crates/datagen/src/social.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
