/root/repo/target/debug/deps/shp_datagen-1a2effc055370b9b.d: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

/root/repo/target/debug/deps/libshp_datagen-1a2effc055370b9b.rlib: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

/root/repo/target/debug/deps/libshp_datagen-1a2effc055370b9b.rmeta: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

crates/datagen/src/lib.rs:
crates/datagen/src/erdos_renyi.rs:
crates/datagen/src/planted.rs:
crates/datagen/src/power_law.rs:
crates/datagen/src/registry.rs:
crates/datagen/src/social.rs:
