/root/repo/target/debug/deps/shp_datagen-2a4cb07e572fdddc.d: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

/root/repo/target/debug/deps/shp_datagen-2a4cb07e572fdddc: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

crates/datagen/src/lib.rs:
crates/datagen/src/erdos_renyi.rs:
crates/datagen/src/planted.rs:
crates/datagen/src/power_law.rs:
crates/datagen/src/registry.rs:
crates/datagen/src/social.rs:
