/root/repo/target/debug/deps/shp_datagen-cd7c5d42e0b1c640.d: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

/root/repo/target/debug/deps/libshp_datagen-cd7c5d42e0b1c640.rlib: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

/root/repo/target/debug/deps/libshp_datagen-cd7c5d42e0b1c640.rmeta: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

crates/datagen/src/lib.rs:
crates/datagen/src/erdos_renyi.rs:
crates/datagen/src/planted.rs:
crates/datagen/src/power_law.rs:
crates/datagen/src/registry.rs:
crates/datagen/src/social.rs:
