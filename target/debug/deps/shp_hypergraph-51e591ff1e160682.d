/root/repo/target/debug/deps/shp_hypergraph-51e591ff1e160682.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libshp_hypergraph-51e591ff1e160682.rmeta: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs Cargo.toml

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/bipartite.rs:
crates/hypergraph/src/builder.rs:
crates/hypergraph/src/clique.rs:
crates/hypergraph/src/error.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/io.rs:
crates/hypergraph/src/metrics.rs:
crates/hypergraph/src/partition.rs:
crates/hypergraph/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
