/root/repo/target/debug/deps/shp_hypergraph-5eb46f65b0a76d1a.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs

/root/repo/target/debug/deps/shp_hypergraph-5eb46f65b0a76d1a: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/bipartite.rs:
crates/hypergraph/src/builder.rs:
crates/hypergraph/src/clique.rs:
crates/hypergraph/src/error.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/io.rs:
crates/hypergraph/src/metrics.rs:
crates/hypergraph/src/partition.rs:
crates/hypergraph/src/stats.rs:
