/root/repo/target/debug/deps/shp_hypergraph-941071b3b0372a1f.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs

/root/repo/target/debug/deps/libshp_hypergraph-941071b3b0372a1f.rlib: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs

/root/repo/target/debug/deps/libshp_hypergraph-941071b3b0372a1f.rmeta: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/bipartite.rs:
crates/hypergraph/src/builder.rs:
crates/hypergraph/src/clique.rs:
crates/hypergraph/src/error.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/io.rs:
crates/hypergraph/src/metrics.rs:
crates/hypergraph/src/partition.rs:
crates/hypergraph/src/stats.rs:
