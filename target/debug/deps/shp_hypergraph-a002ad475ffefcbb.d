/root/repo/target/debug/deps/shp_hypergraph-a002ad475ffefcbb.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libshp_hypergraph-a002ad475ffefcbb.rmeta: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs Cargo.toml

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/bipartite.rs:
crates/hypergraph/src/builder.rs:
crates/hypergraph/src/clique.rs:
crates/hypergraph/src/error.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/io.rs:
crates/hypergraph/src/metrics.rs:
crates/hypergraph/src/partition.rs:
crates/hypergraph/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
