/root/repo/target/debug/deps/shp_serving-2c8fba9d0d7f602f.d: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libshp_serving-2c8fba9d0d7f602f.rmeta: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs Cargo.toml

crates/serving/src/lib.rs:
crates/serving/src/cache.rs:
crates/serving/src/engine.rs:
crates/serving/src/error.rs:
crates/serving/src/metrics.rs:
crates/serving/src/partition_map.rs:
crates/serving/src/router.rs:
crates/serving/src/store.rs:
crates/serving/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
