/root/repo/target/debug/deps/shp_serving-8edc3f82d244c959.d: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

/root/repo/target/debug/deps/libshp_serving-8edc3f82d244c959.rlib: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

/root/repo/target/debug/deps/libshp_serving-8edc3f82d244c959.rmeta: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

crates/serving/src/lib.rs:
crates/serving/src/cache.rs:
crates/serving/src/engine.rs:
crates/serving/src/error.rs:
crates/serving/src/metrics.rs:
crates/serving/src/partition_map.rs:
crates/serving/src/router.rs:
crates/serving/src/store.rs:
crates/serving/src/workload.rs:
