/root/repo/target/debug/deps/shp_serving-bd027a549918392f.d: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

/root/repo/target/debug/deps/shp_serving-bd027a549918392f: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

crates/serving/src/lib.rs:
crates/serving/src/cache.rs:
crates/serving/src/engine.rs:
crates/serving/src/error.rs:
crates/serving/src/metrics.rs:
crates/serving/src/partition_map.rs:
crates/serving/src/router.rs:
crates/serving/src/store.rs:
crates/serving/src/workload.rs:
