/root/repo/target/debug/deps/shp_serving-fb9f782ef0ebeabe.d: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

/root/repo/target/debug/deps/libshp_serving-fb9f782ef0ebeabe.rlib: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

/root/repo/target/debug/deps/libshp_serving-fb9f782ef0ebeabe.rmeta: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

crates/serving/src/lib.rs:
crates/serving/src/cache.rs:
crates/serving/src/engine.rs:
crates/serving/src/error.rs:
crates/serving/src/metrics.rs:
crates/serving/src/partition_map.rs:
crates/serving/src/router.rs:
crates/serving/src/store.rs:
crates/serving/src/workload.rs:
