/root/repo/target/debug/deps/shp_sharding_sim-481bc9a30aa0cbc6.d: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs Cargo.toml

/root/repo/target/debug/deps/libshp_sharding_sim-481bc9a30aa0cbc6.rmeta: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs Cargo.toml

crates/sharding-sim/src/lib.rs:
crates/sharding-sim/src/cluster.rs:
crates/sharding-sim/src/latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
