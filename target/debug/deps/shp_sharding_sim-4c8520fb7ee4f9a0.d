/root/repo/target/debug/deps/shp_sharding_sim-4c8520fb7ee4f9a0.d: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

/root/repo/target/debug/deps/libshp_sharding_sim-4c8520fb7ee4f9a0.rlib: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

/root/repo/target/debug/deps/libshp_sharding_sim-4c8520fb7ee4f9a0.rmeta: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

crates/sharding-sim/src/lib.rs:
crates/sharding-sim/src/cluster.rs:
crates/sharding-sim/src/latency.rs:
