/root/repo/target/debug/deps/shp_sharding_sim-d9dc364965c0be05.d: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

/root/repo/target/debug/deps/shp_sharding_sim-d9dc364965c0be05: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

crates/sharding-sim/src/lib.rs:
crates/sharding-sim/src/cluster.rs:
crates/sharding-sim/src/latency.rs:
