/root/repo/target/debug/deps/shp_sharding_sim-eb11b190dab4815b.d: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

/root/repo/target/debug/deps/libshp_sharding_sim-eb11b190dab4815b.rlib: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

/root/repo/target/debug/deps/libshp_sharding_sim-eb11b190dab4815b.rmeta: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

crates/sharding-sim/src/lib.rs:
crates/sharding-sim/src/cluster.rs:
crates/sharding-sim/src/latency.rs:
