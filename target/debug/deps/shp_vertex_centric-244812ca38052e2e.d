/root/repo/target/debug/deps/shp_vertex_centric-244812ca38052e2e.d: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

/root/repo/target/debug/deps/libshp_vertex_centric-244812ca38052e2e.rlib: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

/root/repo/target/debug/deps/libshp_vertex_centric-244812ca38052e2e.rmeta: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

crates/vertex-centric/src/lib.rs:
crates/vertex-centric/src/context.rs:
crates/vertex-centric/src/engine.rs:
crates/vertex-centric/src/metrics.rs:
crates/vertex-centric/src/program.rs:
crates/vertex-centric/src/routing.rs:
crates/vertex-centric/src/topology.rs:
