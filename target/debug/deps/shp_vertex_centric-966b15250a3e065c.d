/root/repo/target/debug/deps/shp_vertex_centric-966b15250a3e065c.d: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

/root/repo/target/debug/deps/shp_vertex_centric-966b15250a3e065c: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

crates/vertex-centric/src/lib.rs:
crates/vertex-centric/src/context.rs:
crates/vertex-centric/src/engine.rs:
crates/vertex-centric/src/metrics.rs:
crates/vertex-centric/src/program.rs:
crates/vertex-centric/src/routing.rs:
crates/vertex-centric/src/topology.rs:
