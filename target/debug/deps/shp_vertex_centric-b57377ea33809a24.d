/root/repo/target/debug/deps/shp_vertex_centric-b57377ea33809a24.d: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

/root/repo/target/debug/deps/libshp_vertex_centric-b57377ea33809a24.rlib: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

/root/repo/target/debug/deps/libshp_vertex_centric-b57377ea33809a24.rmeta: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

crates/vertex-centric/src/lib.rs:
crates/vertex-centric/src/context.rs:
crates/vertex-centric/src/engine.rs:
crates/vertex-centric/src/metrics.rs:
crates/vertex-centric/src/program.rs:
crates/vertex-centric/src/routing.rs:
crates/vertex-centric/src/topology.rs:
