/root/repo/target/debug/deps/shp_vertex_centric-db7e22cedf26eb4a.d: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libshp_vertex_centric-db7e22cedf26eb4a.rmeta: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs Cargo.toml

crates/vertex-centric/src/lib.rs:
crates/vertex-centric/src/context.rs:
crates/vertex-centric/src/engine.rs:
crates/vertex-centric/src/metrics.rs:
crates/vertex-centric/src/program.rs:
crates/vertex-centric/src/routing.rs:
crates/vertex-centric/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
