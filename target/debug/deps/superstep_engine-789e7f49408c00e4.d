/root/repo/target/debug/deps/superstep_engine-789e7f49408c00e4.d: crates/bench/benches/superstep_engine.rs Cargo.toml

/root/repo/target/debug/deps/libsuperstep_engine-789e7f49408c00e4.rmeta: crates/bench/benches/superstep_engine.rs Cargo.toml

crates/bench/benches/superstep_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
