/root/repo/target/debug/deps/table1_datasets-06d0996b4832614f.d: crates/bench/src/bin/table1_datasets.rs

/root/repo/target/debug/deps/table1_datasets-06d0996b4832614f: crates/bench/src/bin/table1_datasets.rs

crates/bench/src/bin/table1_datasets.rs:
