/root/repo/target/debug/deps/table1_datasets-b633c1a9392ac322.d: crates/bench/src/bin/table1_datasets.rs

/root/repo/target/debug/deps/table1_datasets-b633c1a9392ac322: crates/bench/src/bin/table1_datasets.rs

crates/bench/src/bin/table1_datasets.rs:
