/root/repo/target/debug/deps/table1_datasets-b903c0e86cfb5d17.d: crates/bench/src/bin/table1_datasets.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_datasets-b903c0e86cfb5d17.rmeta: crates/bench/src/bin/table1_datasets.rs Cargo.toml

crates/bench/src/bin/table1_datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
