/root/repo/target/debug/deps/table2_quality-7c9f56db8c1716b4.d: crates/bench/src/bin/table2_quality.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_quality-7c9f56db8c1716b4.rmeta: crates/bench/src/bin/table2_quality.rs Cargo.toml

crates/bench/src/bin/table2_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
