/root/repo/target/debug/deps/table2_quality-c41e1dc53e9c696d.d: crates/bench/src/bin/table2_quality.rs

/root/repo/target/debug/deps/table2_quality-c41e1dc53e9c696d: crates/bench/src/bin/table2_quality.rs

crates/bench/src/bin/table2_quality.rs:
