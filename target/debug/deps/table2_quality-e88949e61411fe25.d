/root/repo/target/debug/deps/table2_quality-e88949e61411fe25.d: crates/bench/src/bin/table2_quality.rs

/root/repo/target/debug/deps/table2_quality-e88949e61411fe25: crates/bench/src/bin/table2_quality.rs

crates/bench/src/bin/table2_quality.rs:
