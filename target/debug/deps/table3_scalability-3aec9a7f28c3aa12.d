/root/repo/target/debug/deps/table3_scalability-3aec9a7f28c3aa12.d: crates/bench/src/bin/table3_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_scalability-3aec9a7f28c3aa12.rmeta: crates/bench/src/bin/table3_scalability.rs Cargo.toml

crates/bench/src/bin/table3_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
