/root/repo/target/debug/deps/table3_scalability-702bab2888087ffa.d: crates/bench/src/bin/table3_scalability.rs

/root/repo/target/debug/deps/table3_scalability-702bab2888087ffa: crates/bench/src/bin/table3_scalability.rs

crates/bench/src/bin/table3_scalability.rs:
