/root/repo/target/debug/deps/table3_scalability-e072875a4ca11f3d.d: crates/bench/src/bin/table3_scalability.rs

/root/repo/target/debug/deps/table3_scalability-e072875a4ca11f3d: crates/bench/src/bin/table3_scalability.rs

crates/bench/src/bin/table3_scalability.rs:
