/root/repo/target/debug/deps/table3_scalability-f37e3f89c927488b.d: crates/bench/src/bin/table3_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_scalability-f37e3f89c927488b.rmeta: crates/bench/src/bin/table3_scalability.rs Cargo.toml

crates/bench/src/bin/table3_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
