/root/repo/target/debug/examples/distributed_engine-6d911305a69863de.d: examples/distributed_engine.rs

/root/repo/target/debug/examples/distributed_engine-6d911305a69863de: examples/distributed_engine.rs

examples/distributed_engine.rs:
