/root/repo/target/debug/examples/distributed_engine-7ca554ec91c87fa9.d: examples/distributed_engine.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_engine-7ca554ec91c87fa9.rmeta: examples/distributed_engine.rs Cargo.toml

examples/distributed_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
