/root/repo/target/debug/examples/incremental_repartition-86f1026f5d344de9.d: examples/incremental_repartition.rs

/root/repo/target/debug/examples/incremental_repartition-86f1026f5d344de9: examples/incremental_repartition.rs

examples/incremental_repartition.rs:
