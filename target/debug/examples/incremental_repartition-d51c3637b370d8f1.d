/root/repo/target/debug/examples/incremental_repartition-d51c3637b370d8f1.d: examples/incremental_repartition.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_repartition-d51c3637b370d8f1.rmeta: examples/incremental_repartition.rs Cargo.toml

examples/incremental_repartition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
