/root/repo/target/debug/examples/live_repartition-ad77b9f776fe5169.d: examples/live_repartition.rs Cargo.toml

/root/repo/target/debug/examples/liblive_repartition-ad77b9f776fe5169.rmeta: examples/live_repartition.rs Cargo.toml

examples/live_repartition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
