/root/repo/target/debug/examples/live_repartition-df0495912c7e682e.d: examples/live_repartition.rs

/root/repo/target/debug/examples/live_repartition-df0495912c7e682e: examples/live_repartition.rs

examples/live_repartition.rs:
