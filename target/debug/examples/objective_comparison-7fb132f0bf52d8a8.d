/root/repo/target/debug/examples/objective_comparison-7fb132f0bf52d8a8.d: examples/objective_comparison.rs

/root/repo/target/debug/examples/objective_comparison-7fb132f0bf52d8a8: examples/objective_comparison.rs

examples/objective_comparison.rs:
