/root/repo/target/debug/examples/objective_comparison-fdbb4fd5075f1e4a.d: examples/objective_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libobjective_comparison-fdbb4fd5075f1e4a.rmeta: examples/objective_comparison.rs Cargo.toml

examples/objective_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
