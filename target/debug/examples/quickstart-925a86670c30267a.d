/root/repo/target/debug/examples/quickstart-925a86670c30267a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-925a86670c30267a: examples/quickstart.rs

examples/quickstart.rs:
