/root/repo/target/debug/examples/recursive_vs_direct-ba745940b833f45c.d: examples/recursive_vs_direct.rs Cargo.toml

/root/repo/target/debug/examples/librecursive_vs_direct-ba745940b833f45c.rmeta: examples/recursive_vs_direct.rs Cargo.toml

examples/recursive_vs_direct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
