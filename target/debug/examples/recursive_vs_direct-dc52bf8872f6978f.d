/root/repo/target/debug/examples/recursive_vs_direct-dc52bf8872f6978f.d: examples/recursive_vs_direct.rs

/root/repo/target/debug/examples/recursive_vs_direct-dc52bf8872f6978f: examples/recursive_vs_direct.rs

examples/recursive_vs_direct.rs:
