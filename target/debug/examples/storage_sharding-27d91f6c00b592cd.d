/root/repo/target/debug/examples/storage_sharding-27d91f6c00b592cd.d: examples/storage_sharding.rs

/root/repo/target/debug/examples/storage_sharding-27d91f6c00b592cd: examples/storage_sharding.rs

examples/storage_sharding.rs:
