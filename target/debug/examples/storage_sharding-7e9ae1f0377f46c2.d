/root/repo/target/debug/examples/storage_sharding-7e9ae1f0377f46c2.d: examples/storage_sharding.rs Cargo.toml

/root/repo/target/debug/examples/libstorage_sharding-7e9ae1f0377f46c2.rmeta: examples/storage_sharding.rs Cargo.toml

examples/storage_sharding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
