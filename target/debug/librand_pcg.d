/root/repo/target/debug/librand_pcg.rlib: /root/repo/vendor/rand/src/lib.rs /root/repo/vendor/rand_pcg/src/lib.rs
