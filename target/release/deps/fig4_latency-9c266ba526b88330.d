/root/repo/target/release/deps/fig4_latency-9c266ba526b88330.d: crates/bench/src/bin/fig4_latency.rs

/root/repo/target/release/deps/fig4_latency-9c266ba526b88330: crates/bench/src/bin/fig4_latency.rs

crates/bench/src/bin/fig4_latency.rs:
