/root/repo/target/release/deps/fig5_scaling-c542b84d290203be.d: crates/bench/src/bin/fig5_scaling.rs

/root/repo/target/release/deps/fig5_scaling-c542b84d290203be: crates/bench/src/bin/fig5_scaling.rs

crates/bench/src/bin/fig5_scaling.rs:
