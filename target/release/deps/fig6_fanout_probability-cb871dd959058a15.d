/root/repo/target/release/deps/fig6_fanout_probability-cb871dd959058a15.d: crates/bench/src/bin/fig6_fanout_probability.rs

/root/repo/target/release/deps/fig6_fanout_probability-cb871dd959058a15: crates/bench/src/bin/fig6_fanout_probability.rs

crates/bench/src/bin/fig6_fanout_probability.rs:
