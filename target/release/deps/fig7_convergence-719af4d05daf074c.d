/root/repo/target/release/deps/fig7_convergence-719af4d05daf074c.d: crates/bench/src/bin/fig7_convergence.rs

/root/repo/target/release/deps/fig7_convergence-719af4d05daf074c: crates/bench/src/bin/fig7_convergence.rs

crates/bench/src/bin/fig7_convergence.rs:
