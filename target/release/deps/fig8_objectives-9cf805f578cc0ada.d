/root/repo/target/release/deps/fig8_objectives-9cf805f578cc0ada.d: crates/bench/src/bin/fig8_objectives.rs

/root/repo/target/release/deps/fig8_objectives-9cf805f578cc0ada: crates/bench/src/bin/fig8_objectives.rs

crates/bench/src/bin/fig8_objectives.rs:
