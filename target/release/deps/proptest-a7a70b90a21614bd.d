/root/repo/target/release/deps/proptest-a7a70b90a21614bd.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-a7a70b90a21614bd.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-a7a70b90a21614bd.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
