/root/repo/target/release/deps/rand_pcg-c8d62f9257d44f74.d: vendor/rand_pcg/src/lib.rs

/root/repo/target/release/deps/librand_pcg-c8d62f9257d44f74.rlib: vendor/rand_pcg/src/lib.rs

/root/repo/target/release/deps/librand_pcg-c8d62f9257d44f74.rmeta: vendor/rand_pcg/src/lib.rs

vendor/rand_pcg/src/lib.rs:
