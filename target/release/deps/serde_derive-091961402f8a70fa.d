/root/repo/target/release/deps/serde_derive-091961402f8a70fa.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-091961402f8a70fa.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
