/root/repo/target/release/deps/serving_router-1ec65eb371b7d361.d: crates/bench/benches/serving_router.rs

/root/repo/target/release/deps/serving_router-1ec65eb371b7d361: crates/bench/benches/serving_router.rs

crates/bench/benches/serving_router.rs:
