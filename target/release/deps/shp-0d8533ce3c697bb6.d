/root/repo/target/release/deps/shp-0d8533ce3c697bb6.d: crates/cli/src/main.rs

/root/repo/target/release/deps/shp-0d8533ce3c697bb6: crates/cli/src/main.rs

crates/cli/src/main.rs:
