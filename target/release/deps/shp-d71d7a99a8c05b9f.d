/root/repo/target/release/deps/shp-d71d7a99a8c05b9f.d: crates/cli/src/main.rs

/root/repo/target/release/deps/shp-d71d7a99a8c05b9f: crates/cli/src/main.rs

crates/cli/src/main.rs:
