/root/repo/target/release/deps/shp-f28f069b3bf974f3.d: src/lib.rs

/root/repo/target/release/deps/libshp-f28f069b3bf974f3.rlib: src/lib.rs

/root/repo/target/release/deps/libshp-f28f069b3bf974f3.rmeta: src/lib.rs

src/lib.rs:
