/root/repo/target/release/deps/shp_baselines-f404797a8a3a888d.d: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

/root/repo/target/release/deps/libshp_baselines-f404797a8a3a888d.rlib: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

/root/repo/target/release/deps/libshp_baselines-f404797a8a3a888d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/greedy.rs crates/baselines/src/hashing.rs crates/baselines/src/label_propagation.rs crates/baselines/src/multilevel.rs crates/baselines/src/random.rs

crates/baselines/src/lib.rs:
crates/baselines/src/greedy.rs:
crates/baselines/src/hashing.rs:
crates/baselines/src/label_propagation.rs:
crates/baselines/src/multilevel.rs:
crates/baselines/src/random.rs:
