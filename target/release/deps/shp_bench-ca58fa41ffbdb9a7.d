/root/repo/target/release/deps/shp_bench-ca58fa41ffbdb9a7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshp_bench-ca58fa41ffbdb9a7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshp_bench-ca58fa41ffbdb9a7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
