/root/repo/target/release/deps/shp_core-f74766e3a47bfc41.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/distributed.rs crates/core/src/gains.rs crates/core/src/histogram.rs crates/core/src/incremental.rs crates/core/src/multidim.rs crates/core/src/neighbor_data.rs crates/core/src/objective.rs crates/core/src/recursive.rs crates/core/src/refinement.rs crates/core/src/report.rs crates/core/src/swap.rs

/root/repo/target/release/deps/libshp_core-f74766e3a47bfc41.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/distributed.rs crates/core/src/gains.rs crates/core/src/histogram.rs crates/core/src/incremental.rs crates/core/src/multidim.rs crates/core/src/neighbor_data.rs crates/core/src/objective.rs crates/core/src/recursive.rs crates/core/src/refinement.rs crates/core/src/report.rs crates/core/src/swap.rs

/root/repo/target/release/deps/libshp_core-f74766e3a47bfc41.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/direct.rs crates/core/src/distributed.rs crates/core/src/gains.rs crates/core/src/histogram.rs crates/core/src/incremental.rs crates/core/src/multidim.rs crates/core/src/neighbor_data.rs crates/core/src/objective.rs crates/core/src/recursive.rs crates/core/src/refinement.rs crates/core/src/report.rs crates/core/src/swap.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/direct.rs:
crates/core/src/distributed.rs:
crates/core/src/gains.rs:
crates/core/src/histogram.rs:
crates/core/src/incremental.rs:
crates/core/src/multidim.rs:
crates/core/src/neighbor_data.rs:
crates/core/src/objective.rs:
crates/core/src/recursive.rs:
crates/core/src/refinement.rs:
crates/core/src/report.rs:
crates/core/src/swap.rs:
