/root/repo/target/release/deps/shp_datagen-e3cfeb822f1bbf8d.d: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

/root/repo/target/release/deps/libshp_datagen-e3cfeb822f1bbf8d.rlib: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

/root/repo/target/release/deps/libshp_datagen-e3cfeb822f1bbf8d.rmeta: crates/datagen/src/lib.rs crates/datagen/src/erdos_renyi.rs crates/datagen/src/planted.rs crates/datagen/src/power_law.rs crates/datagen/src/registry.rs crates/datagen/src/social.rs

crates/datagen/src/lib.rs:
crates/datagen/src/erdos_renyi.rs:
crates/datagen/src/planted.rs:
crates/datagen/src/power_law.rs:
crates/datagen/src/registry.rs:
crates/datagen/src/social.rs:
