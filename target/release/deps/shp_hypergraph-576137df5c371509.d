/root/repo/target/release/deps/shp_hypergraph-576137df5c371509.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs

/root/repo/target/release/deps/libshp_hypergraph-576137df5c371509.rlib: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs

/root/repo/target/release/deps/libshp_hypergraph-576137df5c371509.rmeta: crates/hypergraph/src/lib.rs crates/hypergraph/src/bipartite.rs crates/hypergraph/src/builder.rs crates/hypergraph/src/clique.rs crates/hypergraph/src/error.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/io.rs crates/hypergraph/src/metrics.rs crates/hypergraph/src/partition.rs crates/hypergraph/src/stats.rs

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/bipartite.rs:
crates/hypergraph/src/builder.rs:
crates/hypergraph/src/clique.rs:
crates/hypergraph/src/error.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/io.rs:
crates/hypergraph/src/metrics.rs:
crates/hypergraph/src/partition.rs:
crates/hypergraph/src/stats.rs:
