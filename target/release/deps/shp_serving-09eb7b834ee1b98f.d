/root/repo/target/release/deps/shp_serving-09eb7b834ee1b98f.d: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

/root/repo/target/release/deps/libshp_serving-09eb7b834ee1b98f.rlib: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

/root/repo/target/release/deps/libshp_serving-09eb7b834ee1b98f.rmeta: crates/serving/src/lib.rs crates/serving/src/cache.rs crates/serving/src/engine.rs crates/serving/src/error.rs crates/serving/src/metrics.rs crates/serving/src/partition_map.rs crates/serving/src/router.rs crates/serving/src/store.rs crates/serving/src/workload.rs

crates/serving/src/lib.rs:
crates/serving/src/cache.rs:
crates/serving/src/engine.rs:
crates/serving/src/error.rs:
crates/serving/src/metrics.rs:
crates/serving/src/partition_map.rs:
crates/serving/src/router.rs:
crates/serving/src/store.rs:
crates/serving/src/workload.rs:
