/root/repo/target/release/deps/shp_sharding_sim-9c0ba66d3ef969a9.d: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

/root/repo/target/release/deps/libshp_sharding_sim-9c0ba66d3ef969a9.rlib: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

/root/repo/target/release/deps/libshp_sharding_sim-9c0ba66d3ef969a9.rmeta: crates/sharding-sim/src/lib.rs crates/sharding-sim/src/cluster.rs crates/sharding-sim/src/latency.rs

crates/sharding-sim/src/lib.rs:
crates/sharding-sim/src/cluster.rs:
crates/sharding-sim/src/latency.rs:
