/root/repo/target/release/deps/shp_vertex_centric-00b5bd590ddf8913.d: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

/root/repo/target/release/deps/libshp_vertex_centric-00b5bd590ddf8913.rlib: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

/root/repo/target/release/deps/libshp_vertex_centric-00b5bd590ddf8913.rmeta: crates/vertex-centric/src/lib.rs crates/vertex-centric/src/context.rs crates/vertex-centric/src/engine.rs crates/vertex-centric/src/metrics.rs crates/vertex-centric/src/program.rs crates/vertex-centric/src/routing.rs crates/vertex-centric/src/topology.rs

crates/vertex-centric/src/lib.rs:
crates/vertex-centric/src/context.rs:
crates/vertex-centric/src/engine.rs:
crates/vertex-centric/src/metrics.rs:
crates/vertex-centric/src/program.rs:
crates/vertex-centric/src/routing.rs:
crates/vertex-centric/src/topology.rs:
