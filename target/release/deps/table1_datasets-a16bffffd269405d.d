/root/repo/target/release/deps/table1_datasets-a16bffffd269405d.d: crates/bench/src/bin/table1_datasets.rs

/root/repo/target/release/deps/table1_datasets-a16bffffd269405d: crates/bench/src/bin/table1_datasets.rs

crates/bench/src/bin/table1_datasets.rs:
