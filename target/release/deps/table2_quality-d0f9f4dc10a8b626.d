/root/repo/target/release/deps/table2_quality-d0f9f4dc10a8b626.d: crates/bench/src/bin/table2_quality.rs

/root/repo/target/release/deps/table2_quality-d0f9f4dc10a8b626: crates/bench/src/bin/table2_quality.rs

crates/bench/src/bin/table2_quality.rs:
