/root/repo/target/release/deps/table3_scalability-c85cad201498aa67.d: crates/bench/src/bin/table3_scalability.rs

/root/repo/target/release/deps/table3_scalability-c85cad201498aa67: crates/bench/src/bin/table3_scalability.rs

crates/bench/src/bin/table3_scalability.rs:
