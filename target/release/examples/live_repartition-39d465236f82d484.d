/root/repo/target/release/examples/live_repartition-39d465236f82d484.d: examples/live_repartition.rs

/root/repo/target/release/examples/live_repartition-39d465236f82d484: examples/live_repartition.rs

examples/live_repartition.rs:
