//! Cross-crate integration tests: the full pipeline from generated workload through
//! partitioning to sharded replay, exercising the public API exactly like a downstream user.

use shp::baselines::RandomPartitioner;
use shp::core::{
    partition_direct, partition_distributed, partition_recursive, ObjectiveKind, ShpConfig,
    SocialHashPartitioner,
};
use shp::datagen::{planted_partition, social_graph, Dataset, PlantedConfig, SocialGraphConfig};
use shp::hypergraph::{average_fanout, average_p_fanout, io, GraphStats};
use shp::sharding_sim::{LatencyModel, ShardedCluster};

fn workload(users: usize, seed: u64) -> shp::hypergraph::BipartiteGraph {
    social_graph(&SocialGraphConfig {
        num_users: users,
        avg_degree: 12,
        avg_community_size: 80,
        cross_community_fraction: 0.08,
        seed,
    })
}

#[test]
fn shp2_recovers_planted_partition_structure() {
    let (graph, truth) = planted_partition(&PlantedConfig {
        num_blocks: 8,
        block_size: 128,
        num_queries: 8_192,
        query_degree: 5,
        noise: 0.02,
        seed: 1,
    });
    let planted = shp::hypergraph::Partition::from_assignment(&graph, 8, truth).unwrap();
    let planted_fanout = average_fanout(&graph, &planted);

    let result =
        partition_recursive(&graph, &ShpConfig::recursive_bisection(8).with_seed(1)).unwrap();
    // SHP should come close to the planted optimum and crush a random partition.
    let random = RandomPartitioner::new(1).partition_into(&graph, 8, 0.05);
    let random_fanout = average_fanout(&graph, &random);
    assert!(
        result.report.final_fanout < planted_fanout * 1.35,
        "SHP fanout {} should approach the planted optimum {planted_fanout}",
        result.report.final_fanout
    );
    assert!(
        result.report.final_fanout < random_fanout * 0.5,
        "SHP fanout {} should be far below random {random_fanout}",
        result.report.final_fanout
    );
}

#[test]
fn all_three_execution_paths_agree_in_quality() {
    let graph = workload(4_000, 3);
    let k = 16;
    let shp2 =
        partition_recursive(&graph, &ShpConfig::recursive_bisection(k).with_seed(3)).unwrap();
    let shpk = partition_direct(&graph, &ShpConfig::direct(k).with_seed(3)).unwrap();
    let distributed =
        partition_distributed(&graph, &ShpConfig::recursive_bisection(k).with_seed(3), 4).unwrap();

    let random = RandomPartitioner::new(3).partition_into(&graph, k, 0.05);
    let random_fanout = average_fanout(&graph, &random);
    for (name, fanout) in [
        ("SHP-2", shp2.report.final_fanout),
        ("SHP-k", shpk.report.final_fanout),
        ("distributed SHP-2", distributed.final_fanout),
    ] {
        assert!(
            fanout < random_fanout * 0.8,
            "{name} fanout {fanout} should clearly beat random {random_fanout}"
        );
    }
    // The two SHP-2 paths (in-process and vertex-centric) should land in the same quality band.
    let ratio = distributed.final_fanout / shp2.report.final_fanout;
    assert!(
        ratio > 0.7 && ratio < 1.4,
        "quality ratio {ratio} out of band"
    );
}

#[test]
fn facade_partitioner_roundtrips_through_hmetis_files() {
    let graph = Dataset::EmailEnron
        .generate(0.01, 7)
        .filter_small_queries(2);
    let dir = std::env::temp_dir().join(format!("shp-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("graph.hgr");
    io::write_hmetis_file(&graph, &graph_path).unwrap();
    let reread = io::read_hmetis_file(&graph_path).unwrap();
    assert_eq!(GraphStats::compute(&graph), GraphStats::compute(&reread));

    let partitioner =
        SocialHashPartitioner::new(ShpConfig::recursive_bisection(8).with_seed(7)).unwrap();
    let result = partitioner.partition(&reread);
    let part_path = dir.join("graph.part");
    io::write_partition_file(&result.partition, &part_path).unwrap();
    let reread_partition = io::read_partition_file(&reread, 8, &part_path).unwrap();
    assert_eq!(result.partition, reread_partition);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sharding_pipeline_reduces_latency_versus_random() {
    let graph = workload(6_000, 11);
    let servers = 24;
    let shp = partition_recursive(
        &graph,
        &ShpConfig::recursive_bisection(servers).with_seed(11),
    )
    .unwrap()
    .partition;
    let random = RandomPartitioner::new(11).partition_into(&graph, servers, 0.05);

    let model = LatencyModel::default();
    let shp_report = ShardedCluster::from_partition(&shp, model.clone()).replay(&graph, 1, 11);
    let random_report = ShardedCluster::from_partition(&random, model).replay(&graph, 1, 11);

    assert!(shp_report.average_fanout < random_report.average_fanout * 0.7);
    assert!(
        shp_report.overall.mean < random_report.overall.mean,
        "SHP mean latency {} should be below random {}",
        shp_report.overall.mean,
        random_report.overall.mean
    );
}

#[test]
fn serving_engine_reports_lower_fanout_and_latency_for_shp() {
    let graph = workload(3_000, 19);
    let shards = 16;
    let shp = partition_recursive(
        &graph,
        &ShpConfig::recursive_bisection(shards).with_seed(19),
    )
    .unwrap()
    .partition;
    let random = RandomPartitioner::new(19).partition_into(&graph, shards, 0.05);

    let config = shp::serving::WorkloadConfig {
        arrival_rate: 100.0,
        duration: 30.0,
        ..Default::default()
    };
    let events = shp::serving::open_loop_schedule(graph.num_queries(), &config);
    assert!(!events.is_empty());
    let run = |partition| {
        let engine =
            shp::serving::ServingEngine::new(partition, shp::serving::EngineConfig::default())
                .unwrap();
        engine.run_workload(&graph, &events, 4).unwrap()
    };
    let shp_report = run(&shp);
    let random_report = run(&random);
    assert!(
        shp_report.mean_fanout < random_report.mean_fanout * 0.8,
        "serving fanout {} should clearly beat random {}",
        shp_report.mean_fanout,
        random_report.mean_fanout
    );
    assert!(
        shp_report.p99 < random_report.p99,
        "SHP p99 {} should be below random {}",
        shp_report.p99,
        random_report.p99
    );
}

#[test]
fn live_partition_swap_never_drops_or_double_serves_a_key() {
    use shp::serving::{value_of, EngineConfig, ServingEngine};
    use std::sync::atomic::{AtomicBool, Ordering};

    let graph = workload(1_500, 23);
    let shards = 8;
    let random = RandomPartitioner::new(23).partition_into(&graph, shards, 0.05);
    let shp = partition_recursive(
        &graph,
        &ShpConfig::recursive_bisection(shards).with_seed(23),
    )
    .unwrap()
    .partition;

    let engine = ServingEngine::new(&random, EngineConfig::default()).unwrap();
    let queries: Vec<u32> = graph.queries().collect();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let engine = &engine;
        let graph = &graph;
        let stop = &stop;
        let queries = &queries;
        // Four clients hammer multigets and verify exact coverage on every answer.
        for offset in 0..4usize {
            scope.spawn(move || {
                let mut i = offset;
                while !stop.load(Ordering::Relaxed) {
                    let q = queries[i % queries.len()];
                    let keys = graph.query_neighbors(q);
                    let result = engine.multiget(keys).expect("multiget failed mid-swap");
                    let mut expected: Vec<u32> = keys.to_vec();
                    expected.sort_unstable();
                    expected.dedup();
                    let got: Vec<u32> = result.values.iter().map(|&(k, _)| k).collect();
                    assert_eq!(
                        got, expected,
                        "a key was dropped or double-served during a swap"
                    );
                    for &(k, v) in &result.values {
                        assert_eq!(v, value_of(k), "wrong record served during a swap");
                    }
                    i += 4;
                }
            });
        }
        // The swapper repeatedly flips between the two placements under full load.
        for swap in 0..60 {
            let epoch = engine
                .install_partition(if swap % 2 == 0 { &shp } else { &random })
                .expect("install failed");
            assert_eq!(epoch, swap + 1);
        }
        stop.store(true, Ordering::Relaxed);
    });

    let report = engine.report();
    assert_eq!(engine.swap_count(), 60);
    assert!(report.queries > 0);
    assert!(
        report.max_epoch >= 1,
        "clients never observed a swapped placement"
    );
}

#[test]
fn objective_limits_behave_as_in_lemmas_1_and_2() {
    // End-to-end check of the limit behaviour: optimizing p-fanout with p close to 1 behaves
    // like direct fanout optimization, and p = 0.5 is at least as good as either extreme on a
    // social workload (the paper's Figure 8 finding).
    let graph = workload(3_000, 13);
    let k = 8;
    let run = |objective| {
        partition_recursive(
            &graph,
            &ShpConfig::recursive_bisection(k)
                .with_objective(objective)
                .with_seed(13),
        )
        .unwrap()
        .report
        .final_fanout
    };
    let half = run(ObjectiveKind::ProbabilisticFanout { p: 0.5 });
    let direct = run(ObjectiveKind::Fanout);
    let clique = run(ObjectiveKind::CliqueNet);
    assert!(
        half <= direct * 1.05,
        "p=0.5 ({half}) should not be much worse than direct ({direct})"
    );
    assert!(
        half <= clique * 1.10,
        "p=0.5 ({half}) should not be much worse than clique-net ({clique})"
    );
}

#[test]
fn balance_holds_across_bucket_counts() {
    let graph = workload(5_000, 17);
    for k in [2u32, 8, 32, 64] {
        let result =
            partition_recursive(&graph, &ShpConfig::recursive_bisection(k).with_seed(17)).unwrap();
        assert_eq!(result.partition.num_buckets(), k);
        assert!(
            result.partition.bucket_weights().iter().all(|&w| w > 0),
            "k={k}: every bucket should be non-empty"
        );
        assert!(
            result.report.imbalance < 0.25,
            "k={k}: imbalance {}",
            result.report.imbalance
        );
        // p-fanout is always a lower bound on fanout.
        assert!(
            average_p_fanout(&graph, &result.partition, 0.5)
                <= average_fanout(&graph, &result.partition) + 1e-9
        );
    }
}
