//! Property-based tests for the fault-injection and failover layer: an attached injector
//! with an **empty** plan must be invisible down to the latency bits, a fixed seed must make
//! failover (retries, hedges, and typed partial results) fully deterministic, and killing an
//! entire replica chain must degrade to exactly the keys that chain held — never a wrong
//! value, never a dropped live key.

use proptest::prelude::*;
use shp::faults::{FaultInjector, FaultPlan};
use shp::hypergraph::{GraphBuilder, Partition};
use shp::serving::{value_of, EngineConfig, ServingEngine};
use std::sync::Arc;

/// An engine over `shards * keys_per_shard` keys placed round-robin (`key % shards`), with
/// an optional fault injector.
fn build_engine(
    shards: u32,
    keys_per_shard: u32,
    replication: u32,
    faults: Option<(FaultPlan, u64)>,
) -> (ServingEngine, u32) {
    let n = shards * keys_per_shard;
    let graph = GraphBuilder::from_hyperedges(vec![(0..n).collect::<Vec<u32>>()]).unwrap();
    let partition =
        Partition::from_assignment(&graph, shards, (0..n).map(|k| k % shards).collect()).unwrap();
    let engine = ServingEngine::new(
        &partition,
        EngineConfig {
            seed: 0x5047,
            replication,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let engine = match faults {
        Some((plan, seed)) => engine.with_fault_injector(Arc::new(FaultInjector::new(plan, seed))),
        None => engine,
    };
    (engine, n)
}

/// Strategy: raw multiget key-sets; keys are reduced modulo the key universe inside each test.
fn arb_queries() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..1_000, 1..10), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An attached injector with an empty plan is a no-op down to the latency bits, for any
    /// replication factor: the fault path must cost nothing — not one extra RNG draw, not one
    /// reordered sample — when nothing is scripted.
    #[test]
    fn empty_fault_plan_is_byte_identical_for_any_replication(
        shards in 2u32..6,
        keys_per_shard in 4u32..16,
        replication in 1u32..4,
        queries in arb_queries(),
        seed in 0u64..1_000,
    ) {
        let (plain, n) = build_engine(shards, keys_per_shard, replication, None);
        let (faulty, _) =
            build_engine(shards, keys_per_shard, replication, Some((FaultPlan::new(), seed)));
        for query in &queries {
            let keys: Vec<u32> = query.iter().map(|&k| k % n).collect();
            let a = plain.multiget(&keys).unwrap();
            let b = faulty.multiget(&keys).unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.latency.to_bits(), b.latency.to_bits());
            prop_assert!(b.missing_keys.is_empty());
            prop_assert_eq!((b.retries, b.hedges_won), (0, 0));
        }
        prop_assert_eq!(plain.report(), faulty.report());
    }

    /// Failover under a scripted crash, slowdown, and request drops is deterministic for a
    /// fixed seed: two engines built alike replay the identical sequence of values, retries,
    /// winning hedges, latencies, and typed missing keys.
    #[test]
    fn failover_with_replicas_is_deterministic_for_a_fixed_seed(
        shards in 2u32..6,
        keys_per_shard in 4u32..16,
        dead in 0u32..6,
        slow in 0u32..6,
        slow_factor in 1.5f64..8.0,
        drop_p in 0.0f64..0.9,
        queries in arb_queries(),
        seed in 0u64..1_000,
    ) {
        let plan = FaultPlan::new()
            .crash(dead % shards, 0)
            .slow(slow % shards, 0, u64::MAX, slow_factor)
            .drop_requests((slow + 1) % shards, drop_p);
        let (a, n) = build_engine(shards, keys_per_shard, 2, Some((plan.clone(), seed)));
        let (b, _) = build_engine(shards, keys_per_shard, 2, Some((plan, seed)));
        for query in &queries {
            let keys: Vec<u32> = query.iter().map(|&k| k % n).collect();
            let ra = a.multiget(&keys).unwrap();
            let rb = b.multiget(&keys).unwrap();
            prop_assert_eq!(ra.latency.to_bits(), rb.latency.to_bits());
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.report(), b.report());
    }

    /// Killing one full replica chain degrades to **exactly** the keys whose primary heads
    /// that chain: those keys come back typed-missing, every other key is served with the
    /// correct value, and the two sets partition the distinct request.
    #[test]
    fn killing_a_full_chain_loses_exactly_that_chain_and_nothing_else(
        shards in 2u32..6,
        keys_per_shard in 4u32..16,
        primary in 0u32..6,
        replication in 1u32..4,
        queries in arb_queries(),
        seed in 0u64..1_000,
    ) {
        let primary = primary % shards;
        // Strictly fewer replicas than shards: with `replication == shards` the killed set
        // would be *every* shard and the property degenerates to "everything missing".
        let replication = replication.min(shards - 1);
        // Kill the `replication` consecutive shards holding `primary`'s records; only that
        // chain is fully covered, so only `primary`'s keys become unreachable.
        let mut plan = FaultPlan::new();
        for j in 0..replication {
            plan = plan.crash((primary + j) % shards, 0);
        }
        let (engine, n) = build_engine(shards, keys_per_shard, replication, Some((plan, seed)));
        for query in &queries {
            let keys: Vec<u32> = query.iter().map(|&k| k % n).collect();
            let result = engine.multiget(&keys).unwrap();

            let mut distinct = keys.clone();
            distinct.sort_unstable();
            distinct.dedup();
            let expected_missing: Vec<u32> = distinct
                .iter()
                .copied()
                .filter(|&k| k % shards == primary)
                .collect();
            prop_assert_eq!(&result.missing_keys, &expected_missing);
            prop_assert_eq!(result.values.len() + expected_missing.len(), distinct.len());
            for &(key, value) in &result.values {
                prop_assert!(key % shards != primary);
                prop_assert_eq!(value, value_of(key));
            }
            prop_assert_eq!(result.is_degraded(), !expected_missing.is_empty());
        }
    }
}
