//! Worker-count conformance suite: parallel execution must never change results.
//!
//! The rayon shim distributes the SHP hot paths (gain computation, neighbor-data and
//! gain-histogram construction, clique-net build, BSP superstep compute) over real scoped
//! threads with ordered chunk reduction. This suite locks in the resulting contract:
//!
//! * every registry algorithm produces a **bit-identical** `PartitionOutcome` (assignment,
//!   fanout/p-fanout/imbalance bits, iteration and move counts) for `workers ∈ {1, 2, 4, 8}`
//!   on fixed-seed planted-partition and power-law graphs;
//! * the chunking primitive exactly covers the index space, in order, with no overlap, and
//!   the ordered reduction equals the sequential scan for arbitrary `(len, workers)`;
//! * the thread pool survives panicking tasks without deadlocking.
//!
//! `SHP_TEST_WORKERS` (see CI's multi-threaded job) adds an extra worker count to every
//! comparison, so a single-threaded default run cannot mask races: the same tests re-run with
//! the pool actually engaged.

use proptest::prelude::*;
use shp::baselines::full_registry;
use shp::core::api::{NoopObserver, PartitionOutcome, PartitionSpec, TraceObserver};
use shp::core::gains::{self, GainKernel, TargetConstraint};
use shp::core::{
    partition_direct, BalanceMode, NeighborData, Objective, Refiner, ShpConfig, SwapStrategy,
};
use shp::datagen::{planted_partition, power_law_bipartite, PlantedConfig, PowerLawConfig};
use shp::hypergraph::{BipartiteGraph, Partition};

/// Worker counts every comparison runs at: the fixed `{1, 2, 4, 8}` ladder plus the value of
/// `SHP_TEST_WORKERS` when set (deduplicated), so the CI matrix can force extra counts.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4, 8];
    if let Some(extra) = std::env::var("SHP_TEST_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&w| w >= 1)
    {
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn planted_graph() -> BipartiteGraph {
    planted_partition(&PlantedConfig {
        num_blocks: 4,
        block_size: 128,
        num_queries: 1_536,
        query_degree: 5,
        noise: 0.08,
        seed: 0x5047,
    })
    .0
}

fn power_law_graph() -> BipartiteGraph {
    power_law_bipartite(&PowerLawConfig {
        num_queries: 1_200,
        num_data: 900,
        min_degree: 2,
        max_degree: 40,
        seed: 0x5047,
        ..Default::default()
    })
}

/// The exact-equality fingerprint of an outcome. Floats are compared by bit pattern — "close
/// enough" would hide reduction-order differences, which are precisely the bug class this
/// suite exists to catch.
type Fingerprint = (Vec<u32>, u64, u64, u64, usize, u64);

/// A [`Fingerprint`] plus the observer's trace event stream — everything a run exposes.
type TracedFingerprint = (Fingerprint, Vec<(usize, usize, u64)>);

fn fingerprint(outcome: &PartitionOutcome) -> Fingerprint {
    (
        outcome.partition.assignment().to_vec(),
        outcome.fanout.to_bits(),
        outcome.p_fanout.to_bits(),
        outcome.imbalance.to_bits(),
        outcome.iterations,
        outcome.moves,
    )
}

/// Every registry algorithm, on both fixed-seed graphs, must produce bit-identical outcomes
/// for every worker count.
#[test]
fn all_registry_algorithms_are_bit_identical_across_worker_counts() {
    let registry = full_registry();
    let counts = worker_counts();
    for (graph_name, graph, k) in [
        ("planted", planted_graph(), 4u32),
        ("power-law", power_law_graph(), 8u32),
    ] {
        for name in registry.names() {
            let mut baseline: Option<(Vec<u32>, u64, u64, u64, usize, u64)> = None;
            for &workers in &counts {
                let spec = PartitionSpec::new(k)
                    .with_seed(0x5047)
                    .with_max_iterations(4)
                    .with_workers(workers);
                let outcome = registry
                    .run(&name, &graph, &spec, &mut NoopObserver)
                    .expect("registered algorithm on a valid spec");
                let fp = fingerprint(&outcome);
                match &baseline {
                    None => baseline = Some(fp),
                    Some(expected) => assert_eq!(
                        &fp, expected,
                        "{name} on {graph_name}: outcome diverged at workers={workers}"
                    ),
                }
            }
        }
    }
}

/// The per-iteration trace (the observable refinement history) must also be independent of
/// the worker count, not just the final partition.
#[test]
fn iteration_traces_are_identical_across_worker_counts() {
    let graph = planted_graph();
    for name in ["shpk", "shp2", "distributed"] {
        let registry = full_registry();
        let mut baseline: Option<Vec<(usize, usize, u64)>> = None;
        for workers in worker_counts() {
            let spec = PartitionSpec::new(4)
                .with_seed(7)
                .with_max_iterations(5)
                .with_workers(workers);
            let mut trace = TraceObserver::default();
            registry
                .run(name, &graph, &spec, &mut trace)
                .expect("valid spec");
            let events: Vec<(usize, usize, u64)> = trace
                .iterations
                .iter()
                .map(|e| (e.iteration, e.moved, e.fanout.to_bits()))
                .collect();
            match &baseline {
                None => baseline = Some(events),
                Some(expected) => assert_eq!(
                    &events, expected,
                    "{name}: iteration trace diverged at workers={workers}"
                ),
            }
        }
    }
}

/// Scratch-vs-legacy gain-kernel oracle: on both fixed-seed graphs, under both constraint
/// shapes, the dense-scratch kernel must emit a **bit-identical** `MoveProposal` list
/// (vertices, buckets, and gain float bits) to the retained hash-map kernel, for every worker
/// count and with non-positive proposals both included and excluded.
#[test]
fn scratch_kernel_proposals_are_bit_identical_to_legacy() {
    for (graph_name, graph, k) in [
        ("planted", planted_graph(), 4u32),
        ("power-law", power_law_graph(), 8u32),
    ] {
        let mut rng = rand::SeedableRng::seed_from_u64(0x5047);
        let partition = Partition::new_random(&graph, k, &mut rng as &mut rand_pcg::Pcg64).unwrap();
        let nd = NeighborData::build(&graph, &partition);
        let objective = Objective::PFanout { p: 0.5 };
        let sibling_groups: Vec<Vec<u32>> = (0..k / 2).map(|g| vec![2 * g, 2 * g + 1]).collect();
        for constraint in [
            TargetConstraint::all(k),
            TargetConstraint::sibling_groups(&sibling_groups),
        ] {
            for include_nonpositive in [false, true] {
                let mut baseline: Option<Vec<(u32, u32, u32, u64)>> = None;
                for &workers in &worker_counts() {
                    for kernel in [GainKernel::Scratch, GainKernel::LegacyHashMap] {
                        let proposals = gains::compute_proposals_with_kernel(
                            &objective,
                            &graph,
                            &partition,
                            &nd,
                            &constraint,
                            include_nonpositive,
                            workers,
                            kernel,
                        );
                        let fp: Vec<(u32, u32, u32, u64)> = proposals
                            .iter()
                            .map(|p| (p.vertex, p.from, p.to, p.gain.to_bits()))
                            .collect();
                        match &baseline {
                            None => baseline = Some(fp),
                            Some(expected) => assert_eq!(
                                &fp, expected,
                                "{graph_name}: {kernel:?} diverged at workers={workers}, \
                                 include_nonpositive={include_nonpositive}"
                            ),
                        }
                    }
                }
            }
        }
    }
}

/// Dirty-set-vs-full-rescan oracle over complete refinement runs: for both graphs, both swap
/// strategies, and every worker count, the optimized pipeline (scratch kernel + dirty-vertex
/// active set) must reproduce the legacy pipeline (hash-map kernel + full rescan) exactly —
/// partitions equal, per-iteration stats equal including float bits.
#[test]
fn dirty_set_refinement_is_bit_identical_to_legacy_full_rescan() {
    for (graph_name, graph, k) in [
        ("planted", planted_graph(), 4u32),
        ("power-law", power_law_graph(), 8u32),
    ] {
        for strategy in [SwapStrategy::Matrix, SwapStrategy::Histogram] {
            let mut rng = rand::SeedableRng::seed_from_u64(77);
            let initial =
                Partition::new_random(&graph, k, &mut rng as &mut rand_pcg::Pcg64).unwrap();
            type RunFingerprint = (Partition, Vec<(usize, usize, u64, u64)>);
            let mut baseline: Option<RunFingerprint> = None;
            for &workers in &worker_counts() {
                for (dirty, kernel) in [
                    (true, GainKernel::Scratch),
                    (false, GainKernel::Scratch),
                    (false, GainKernel::LegacyHashMap),
                ] {
                    let mut partition = initial.clone();
                    let mut nd = NeighborData::build(&graph, &partition);
                    let refiner = Refiner::new(
                        &graph,
                        Objective::PFanout { p: 0.5 },
                        TargetConstraint::all(k),
                        strategy,
                        BalanceMode::Expectation,
                        false,
                        0.05,
                        77,
                    )
                    .with_workers(workers)
                    .with_dirty_set(dirty)
                    .with_kernel(kernel);
                    let history = refiner.run(&mut partition, &mut nd, 6, 0.0);
                    let stats: Vec<(usize, usize, u64, u64)> = history
                        .iter()
                        .map(|s| {
                            (
                                s.candidates,
                                s.moved,
                                s.applied_gain.to_bits(),
                                s.fanout_after.to_bits(),
                            )
                        })
                        .collect();
                    match &baseline {
                        None => baseline = Some((partition, stats)),
                        Some((p, st)) => {
                            assert_eq!(
                                &partition, p,
                                "{graph_name}/{strategy:?}: partition diverged \
                                 (workers={workers}, dirty={dirty}, kernel={kernel:?})"
                            );
                            assert_eq!(
                                &stats, st,
                                "{graph_name}/{strategy:?}: stats diverged \
                                 (workers={workers}, dirty={dirty}, kernel={kernel:?})"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Registry-level oracle for the shared refinement engine: the public `shpk` entry point
/// (scratch kernel + dirty set, as shipped) must produce exactly the partition that the
/// legacy pipeline produces when run step-by-step from the same seeded initial partition.
#[test]
fn shpk_outcome_equals_manually_run_legacy_pipeline() {
    let graph = planted_graph();
    let config = ShpConfig::direct(4)
        .with_seed(0x5047)
        .with_max_iterations(5);
    let new_path = partition_direct(&graph, &config).expect("valid config");

    // Reconstruct partition_direct by hand with the legacy kernel and full rescans.
    let mut rng = rand::SeedableRng::seed_from_u64(0x5047);
    let mut partition = Partition::new_random(&graph, 4, &mut rng as &mut rand_pcg::Pcg64).unwrap();
    let mut nd = NeighborData::build(&graph, &partition);
    let refiner = Refiner::new(
        &graph,
        Objective::PFanout { p: 0.5 },
        TargetConstraint::all(4),
        config.swap_strategy,
        config.balance_mode,
        config.allow_imbalanced_moves,
        config.epsilon,
        config.seed,
    )
    .with_dirty_set(false)
    .with_kernel(GainKernel::LegacyHashMap);
    let history = refiner.run(
        &mut partition,
        &mut nd,
        config.max_iterations,
        config.convergence_threshold,
    );

    assert_eq!(new_path.partition, partition);
    assert_eq!(new_path.report.history.len(), history.len());
    for (a, b) in new_path.report.history.iter().zip(history.iter()) {
        assert_eq!(a.moved, b.moved);
        assert_eq!(a.applied_gain.to_bits(), b.applied_gain.to_bits());
    }
}

/// Telemetry must be write-only: with instrumentation enabled or disabled, every registry
/// algorithm must produce a bit-identical outcome **and** iteration trace for every worker
/// count. Spans, counters, and histograms observe the phases; nothing they do may feed back
/// into a partitioning decision.
///
/// The enabled flag is process-global, so this test toggles it while sibling tests run — which
/// is itself part of the contract: flipping telemetry mid-flight must be invisible to every
/// algorithm in this binary.
#[test]
fn telemetry_toggle_never_changes_any_algorithm_outcome() {
    let registry = full_registry();
    let graph = planted_graph();
    for name in registry.names() {
        let mut baseline: Option<TracedFingerprint> = None;
        for &workers in &worker_counts() {
            for enabled in [true, false] {
                shp::telemetry::set_enabled(enabled);
                let spec = PartitionSpec::new(4)
                    .with_seed(0x5047)
                    .with_max_iterations(4)
                    .with_workers(workers);
                let mut trace = TraceObserver::default();
                let outcome = registry
                    .run(&name, &graph, &spec, &mut trace)
                    .expect("registered algorithm on a valid spec");
                let events: Vec<(usize, usize, u64)> = trace
                    .iterations
                    .iter()
                    .map(|e| (e.iteration, e.moved, e.fanout.to_bits()))
                    .collect();
                let fp = (fingerprint(&outcome), events);
                match &baseline {
                    None => baseline = Some(fp),
                    Some(expected) => assert_eq!(
                        &fp, expected,
                        "{name}: outcome diverged at workers={workers}, telemetry={enabled}"
                    ),
                }
            }
        }
    }
    shp::telemetry::set_enabled(true);
}

/// A panicking task must propagate to the caller without deadlocking, and the pool must stay
/// usable afterwards — including under repeated failure/recovery cycles and with several
/// panicking chunks at once.
#[test]
fn thread_pool_survives_panicking_tasks_without_deadlocking() {
    for round in 0..5 {
        let caught = std::panic::catch_unwind(|| {
            rayon::pool::map_index(4_096, 8, |i| {
                // Multiple chunks panic: one task near the front and one near the back.
                if i == 100 || i == 4_000 {
                    panic!("injected failure {i} in round {round}");
                }
                i as u64
            })
        });
        assert!(caught.is_err(), "round {round}: the panic must propagate");

        // The pool holds no poisoned global state: the next calls work and stay correct.
        let ok = rayon::pool::map_index(4_096, 8, |i| i as u64);
        assert_eq!(ok.len(), 4_096);
        assert!(ok.iter().enumerate().all(|(i, &x)| x == i as u64));
    }
}

/// Same guarantee for the coarse-unit scheduler used by the BSP engine and the serving
/// scatter-gather path.
#[test]
fn map_vec_propagates_panics_and_recovers() {
    let caught = std::panic::catch_unwind(|| {
        rayon::pool::map_vec((0..8u32).collect::<Vec<_>>(), 8, |_, x| {
            if x == 5 {
                panic!("injected worker failure");
            }
            x * 2
        })
    });
    assert!(caught.is_err());
    let ok = rayon::pool::map_vec((0..8u32).collect::<Vec<_>>(), 8, |_, x| x * 2);
    assert_eq!(ok, vec![0, 2, 4, 6, 8, 10, 12, 14]);
}

// ---------------------------------------------------------------------------------------------
// Ingestion: the zero-copy parallel parsers and the flat-arena CSR build
// ---------------------------------------------------------------------------------------------

/// Renders the conformance graphs in both text formats for the parse comparisons.
fn ingest_fixtures() -> Vec<(&'static str, Vec<u8>, Vec<u8>)> {
    [
        ("planted", planted_graph()),
        ("power_law", power_law_graph()),
    ]
    .into_iter()
    .map(|(name, graph)| {
        let mut edge_list = Vec::new();
        shp::hypergraph::io::write_edge_list(&graph, &mut edge_list).unwrap();
        let mut hmetis = Vec::new();
        shp::hypergraph::io::write_hmetis(&graph, &mut hmetis).unwrap();
        (name, edge_list, hmetis)
    })
    .collect()
}

/// The zero-copy chunked parsers must produce **byte-identical graphs** to the retained
/// legacy readers (per-line `String`s + the `BuildKernel::Legacy` per-query-`Vec` CSR build)
/// for every worker count, on both text formats.
#[test]
fn parallel_parsing_is_bit_identical_to_the_legacy_readers() {
    use shp::hypergraph::io;
    for (name, edge_list, hmetis) in ingest_fixtures() {
        let edge_oracle = io::read_edge_list_legacy(&edge_list[..]).unwrap();
        let hmetis_oracle = io::read_hmetis_legacy(&hmetis[..]).unwrap();
        for workers in worker_counts() {
            assert_eq!(
                io::parse_edge_list_bytes(&edge_list, workers).unwrap(),
                edge_oracle,
                "{name}: edge-list parse diverged at workers={workers}"
            );
            assert_eq!(
                io::parse_hmetis_bytes(&hmetis, workers).unwrap(),
                hmetis_oracle,
                "{name}: hmetis parse diverged at workers={workers}"
            );
        }
    }
}

/// On malformed input, every worker count must report the **same `GraphError::Parse` line
/// number and message** as the sequential legacy reader — chunked parsing merges results in
/// chunk order precisely so errors stay deterministic.
#[test]
fn parallel_parse_errors_carry_identical_line_numbers() {
    use shp::hypergraph::io;
    use shp::hypergraph::GraphError;

    let parse_failure = |result: Result<shp::hypergraph::BipartiteGraph, GraphError>,
                         context: &str|
     -> (usize, String) {
        match result {
            Err(GraphError::Parse { line, message }) => (line, message),
            other => panic!("{context}: expected a parse error, got {other:?}"),
        }
    };

    for (name, mut edge_list, mut hmetis) in ingest_fixtures() {
        // Corrupt a line roughly 70% in, so at higher worker counts the bad line sits in the
        // middle of a later chunk, after blank and comment lines have skewed naive counting.
        let corrupt = |bytes: &mut Vec<u8>, payload: &[u8]| {
            let newlines: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| (b == b'\n').then_some(i))
                .collect();
            let at = newlines[newlines.len() * 7 / 10];
            bytes.splice(
                at..at,
                b"\n# note\n\n"
                    .iter()
                    .copied()
                    .chain(payload.iter().copied()),
            );
        };
        corrupt(&mut edge_list, b"12 oops extra");
        corrupt(&mut hmetis, b"7 0 3");

        let edge_expected = parse_failure(
            io::read_edge_list_legacy(&edge_list[..]),
            &format!("{name}: legacy edge list"),
        );
        let hmetis_expected = parse_failure(
            io::read_hmetis_legacy(&hmetis[..]),
            &format!("{name}: legacy hmetis"),
        );
        for workers in worker_counts() {
            assert_eq!(
                parse_failure(
                    io::parse_edge_list_bytes(&edge_list, workers),
                    &format!("{name}: edge list workers={workers}"),
                ),
                edge_expected,
                "{name}: edge-list error diverged at workers={workers}"
            );
            assert_eq!(
                parse_failure(
                    io::parse_hmetis_bytes(&hmetis, workers),
                    &format!("{name}: hmetis workers={workers}"),
                ),
                hmetis_expected,
                "{name}: hmetis error diverged at workers={workers}"
            );
        }
    }
}

/// The flat-arena builder's parallel CSR assembly (counting-sort + partitioned transpose)
/// must be bit-identical across worker counts and to the legacy per-query-`Vec` kernel.
#[test]
fn flat_builder_csr_is_bit_identical_across_workers_and_kernels() {
    use shp::hypergraph::{BuildKernel, GraphBuilder};
    let source = power_law_graph();
    let oracle = {
        let mut b = GraphBuilder::new().with_kernel(BuildKernel::Legacy);
        for q in source.queries() {
            b.add_query_slice(source.query_neighbors(q));
        }
        b.ensure_data_count(source.num_data());
        b.build().unwrap()
    };
    assert_eq!(oracle, source);
    for workers in worker_counts() {
        let mut b = GraphBuilder::new().with_workers(workers);
        for q in source.queries() {
            b.add_query_slice(source.query_neighbors(q));
        }
        b.ensure_data_count(source.num_data());
        assert_eq!(
            b.build().unwrap(),
            oracle,
            "flat build diverged at workers={workers}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chunking primitive: for arbitrary `(len, workers)` the ranges are contiguous,
    /// ascending, non-overlapping, balanced to within one item, and exactly cover `0..len`.
    #[test]
    fn chunk_ranges_exactly_cover_the_index_space(len in 0usize..10_000, workers in 1usize..64) {
        let ranges = rayon::pool::chunk_ranges(len, workers);
        prop_assert!(ranges.len() <= workers.max(1));
        let mut cursor = 0usize;
        let mut sizes = Vec::with_capacity(ranges.len());
        for r in &ranges {
            prop_assert_eq!(r.start, cursor, "ranges must be contiguous and ascending");
            prop_assert!(r.end > r.start, "ranges must be non-empty");
            sizes.push(r.end - r.start);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, len, "ranges must cover 0..len exactly");
        if let (Some(&min), Some(&max)) = (sizes.iter().min(), sizes.iter().max()) {
            prop_assert!(max - min <= 1, "chunk sizes must be balanced: {:?}", sizes);
        }
    }

    /// Ordered reduction: the parallel map/filter-map equals the sequential scan for arbitrary
    /// `(len, workers)` — order preserved, nothing lost, nothing duplicated.
    #[test]
    fn ordered_reduction_equals_the_sequential_scan(len in 0usize..4_096, workers in 1usize..16) {
        let mapped = rayon::pool::map_index(len, workers, |i| i as u64 * 3 + 1);
        let expected: Vec<u64> = (0..len as u64).map(|i| i * 3 + 1).collect();
        prop_assert_eq!(mapped, expected);

        let filtered = rayon::pool::filter_map_index(len, workers, |i| (i % 3 == 0).then_some(i));
        let expected: Vec<usize> = (0..len).filter(|i| i % 3 == 0).collect();
        prop_assert_eq!(filtered, expected);
    }
}
