//! Property-based tests over the public API: invariants that must hold for arbitrary
//! hypergraphs and configurations, checked with proptest.

use proptest::prelude::*;
use shp::core::{partition_direct, partition_recursive, NeighborData, Objective, ShpConfig};
use shp::hypergraph::{
    average_fanout, average_p_fanout, io, metrics, weighted_edge_cut, GraphBuilder, Partition,
};

/// Strategy: an arbitrary small hypergraph as a list of hyperedges over up to `max_data`
/// vertices.
fn arb_hypergraph(max_queries: usize, max_data: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0..max_data, 2..8usize),
        1..max_queries,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// p-fanout never exceeds fanout and both are at least 1 for non-empty queries (Section 3.1).
    #[test]
    fn p_fanout_is_a_lower_bound_on_fanout(
        edges in arb_hypergraph(40, 30),
        k in 2u32..6,
        p in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let partition = Partition::new_random(&graph, k, &mut rng as &mut rand_pcg::Pcg64).unwrap();
        let fanout = average_fanout(&graph, &partition);
        let p_fanout = average_p_fanout(&graph, &partition, p);
        prop_assert!(p_fanout <= fanout + 1e-9);
        prop_assert!(fanout >= 1.0 - 1e-9);
    }

    /// The analytic move gain (Equation 1 and its limits) always equals the brute-force
    /// objective difference.
    #[test]
    fn move_gains_match_objective_deltas(
        edges in arb_hypergraph(25, 20),
        k in 2u32..5,
        vertex_choice in 0u32..20,
        target in 0u32..5,
        p in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        prop_assume!(graph.num_data() > 0);
        let v = vertex_choice % graph.num_data() as u32;
        let to = target % k;
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let partition = Partition::new_random(&graph, k, &mut rng as &mut rand_pcg::Pcg64).unwrap();
        let nd = NeighborData::build(&graph, &partition);

        for objective in [Objective::PFanout { p }, Objective::Fanout, Objective::CliqueNet] {
            let gain = shp::core::gains::move_gain(&objective, &graph, &partition, &nd, v, to);
            let scale = match objective {
                Objective::CliqueNet => 1.0,
                _ => graph.num_queries() as f64,
            };
            let before = objective.evaluate(&graph, &partition) * scale;
            let mut moved = partition.clone();
            moved.assign(v, to);
            let after = objective.evaluate(&graph, &moved) * scale;
            prop_assert!((gain - (before - after)).abs() < 1e-6,
                "objective {objective:?}: gain {gain} vs delta {}", before - after);
        }
    }

    /// Neighbor data updated incrementally always matches a fresh rebuild. The bucket range
    /// deliberately straddles `apply_move`'s small-fanout threshold (4), so random move
    /// sequences exercise both the linear-scan fast path and the combined binary-search pass,
    /// including the remove-plus-insert rotation in both directions.
    #[test]
    fn neighbor_data_incremental_updates_are_consistent(
        edges in arb_hypergraph(30, 25),
        k in 2u32..12,
        moves in prop::collection::vec((0u32..25, 0u32..12), 1..60),
        seed in 0u64..1000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        prop_assume!(graph.num_data() > 0);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let mut partition = Partition::new_random(&graph, k, &mut rng as &mut rand_pcg::Pcg64).unwrap();
        let mut nd = NeighborData::build(&graph, &partition);
        for (v_raw, b_raw) in moves {
            let v = v_raw % graph.num_data() as u32;
            let to = b_raw % k;
            let from = partition.bucket_of(v);
            nd.apply_move(&graph, v, from, to);
            partition.assign(v, to);
        }
        prop_assert_eq!(nd, NeighborData::build(&graph, &partition));
    }

    /// Both SHP modes always return complete, correctly sized, non-degrading partitions.
    #[test]
    fn shp_partitions_are_valid_and_never_worse_than_start(
        edges in arb_hypergraph(40, 30),
        k in 2u32..9,
        seed in 0u64..1000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        let recursive = partition_recursive(
            &graph,
            &ShpConfig::recursive_bisection(k).with_seed(seed).with_max_iterations(5),
        ).unwrap();
        let direct = partition_direct(
            &graph,
            &ShpConfig::direct(k).with_seed(seed).with_max_iterations(5),
        ).unwrap();
        for result in [&recursive, &direct] {
            prop_assert_eq!(result.partition.num_buckets(), k);
            prop_assert_eq!(result.partition.num_data(), graph.num_data());
            prop_assert!(result.report.final_fanout >= 1.0 - 1e-9 || graph.num_queries() == 0);
            // Fanout can never exceed the smaller of k and the largest hyperedge.
            let bound = (k as f64).min(graph.max_query_degree() as f64).max(1.0);
            prop_assert!(result.report.final_fanout <= bound + 1e-9);
        }
    }

    /// The weighted edge cut metric equals the clique-net graph's cut for the same partition.
    #[test]
    fn weighted_edge_cut_matches_clique_net_graph(
        edges in arb_hypergraph(25, 20),
        k in 2u32..5,
        seed in 0u64..1000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let partition = Partition::new_random(&graph, k, &mut rng as &mut rand_pcg::Pcg64).unwrap();
        let clique = shp::hypergraph::CliqueNetGraph::build(&graph, usize::MAX);
        prop_assert_eq!(
            clique.edge_cut(partition.assignment()),
            weighted_edge_cut(&graph, &partition)
        );
    }

    /// The serving router's batches exactly cover each query's distinct ids: every requested
    /// id appears in exactly one batch, on exactly the shard its partition assigns it to, and
    /// the plan's fanout equals the metric-layer fanout of the query.
    #[test]
    fn router_batches_exactly_cover_each_query(
        edges in arb_hypergraph(40, 30),
        k in 2u32..9,
        seed in 0u64..1000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        prop_assume!(graph.num_data() > 0);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let partition = Partition::new_random(&graph, k, &mut rng as &mut rand_pcg::Pcg64).unwrap();
        let snapshot = shp::serving::PartitionSnapshot::from_partition(&partition, 0).unwrap();
        let router = shp::serving::ShardRouter::new();
        for q in graph.queries() {
            let keys = graph.query_neighbors(q);
            let plan = router.route(&snapshot, keys).unwrap();

            // Batches target pairwise distinct shards, and each key sits on its own shard.
            let shards: Vec<u32> = plan.batches.iter().map(|b| b.shard).collect();
            let mut unique_shards = shards.clone();
            unique_shards.sort_unstable();
            unique_shards.dedup();
            prop_assert_eq!(unique_shards.len(), shards.len());
            for batch in &plan.batches {
                for &key in &batch.keys {
                    prop_assert_eq!(partition.bucket_of(key), batch.shard);
                }
            }

            // The union of the batches is exactly the query's distinct id set — no id dropped,
            // none served twice across shards.
            let mut covered: Vec<u32> =
                plan.batches.iter().flat_map(|b| b.keys.iter().copied()).collect();
            covered.sort_unstable();
            let before_dedup = covered.len();
            covered.dedup();
            prop_assert_eq!(covered.len(), before_dedup);
            let mut expected: Vec<u32> = keys.to_vec();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(covered, expected);

            // Fanout agrees with the metrics layer.
            prop_assert_eq!(plan.fanout(), metrics::query_fanout(&graph, &partition, q));
        }
    }

    /// Fanout histograms are consistent with the scalar metrics.
    #[test]
    fn fanout_histogram_matches_average(
        edges in arb_hypergraph(30, 25),
        k in 2u32..6,
        seed in 0u64..1000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let partition = Partition::new_random(&graph, k, &mut rng as &mut rand_pcg::Pcg64).unwrap();
        let histogram = metrics::FanoutHistogram::compute(&graph, &partition);
        prop_assert!((histogram.mean() - average_fanout(&graph, &partition)).abs() < 1e-9);
        prop_assert_eq!(histogram.total(), graph.num_queries() as u64);
        prop_assert_eq!(histogram.max() as u32, metrics::max_fanout(&graph, &partition));
    }

    /// The hMetis and `.shpb` formats round-trip arbitrary hypergraphs exactly — including
    /// isolated data vertices, and for `.shpb` the data weights; serialization is
    /// deterministic, and parsing is identical across worker counts and build kernels.
    #[test]
    fn hmetis_and_shpb_roundtrips_preserve_the_graph(
        edges in arb_hypergraph(40, 30),
        weight_seed in 0u32..1000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();

        let mut hmetis = Vec::new();
        io::write_hmetis(&graph, &mut hmetis).unwrap();
        prop_assert_eq!(&io::read_hmetis(&hmetis[..]).unwrap(), &graph);
        prop_assert_eq!(&io::read_hmetis_legacy(&hmetis[..]).unwrap(), &graph);
        for workers in [2usize, 4, 8] {
            prop_assert_eq!(&io::parse_hmetis_bytes(&hmetis, workers).unwrap(), &graph);
        }
        let mut hmetis_again = Vec::new();
        io::write_hmetis(&io::read_hmetis(&hmetis[..]).unwrap(), &mut hmetis_again).unwrap();
        prop_assert_eq!(&hmetis, &hmetis_again, "hmetis writing must be deterministic");

        // `.shpb` additionally carries data weights.
        let weights: Vec<u32> =
            (0..graph.num_data() as u32).map(|v| (v * 7 + weight_seed) % 100 + 1).collect();
        let weighted = graph.clone().with_data_weights(weights).unwrap();
        for g in [&graph, &weighted] {
            let mut binary = Vec::new();
            io::write_shpb(g, &mut binary).unwrap();
            let decoded = io::parse_shpb_bytes(&binary).unwrap();
            prop_assert_eq!(&decoded, g);
            prop_assert_eq!(decoded.has_weights(), g.has_weights());
            let mut binary_again = Vec::new();
            io::write_shpb(&decoded, &mut binary_again).unwrap();
            prop_assert_eq!(&binary, &binary_again, "shpb writing must be deterministic");
        }
    }

    /// The edge-list format stores only the edges, so its round-trip target is the
    /// edge-normalized graph (no empty queries, no trailing isolated data vertices): parsing
    /// a written edge list equals rebuilding from the edge pairs, for every worker count and
    /// both build kernels, and a second write is byte-identical.
    #[test]
    fn edge_list_roundtrip_is_stable_and_kernel_independent(
        edges in arb_hypergraph(40, 30),
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        let pairs: Vec<(u32, u32)> = graph.edges().collect();
        let normalized = GraphBuilder::from_edge_list(&pairs).unwrap();

        let mut text = Vec::new();
        io::write_edge_list(&graph, &mut text).unwrap();
        let parsed = io::read_edge_list(&text[..]).unwrap();
        prop_assert_eq!(&parsed, &normalized);
        prop_assert_eq!(&io::read_edge_list_legacy(&text[..]).unwrap(), &normalized);
        for workers in [2usize, 4, 8] {
            prop_assert_eq!(&io::parse_edge_list_bytes(&text, workers).unwrap(), &normalized);
        }

        let mut text_again = Vec::new();
        io::write_edge_list(&parsed, &mut text_again).unwrap();
        prop_assert_eq!(&text, &text_again, "edge-list writing must be deterministic");
    }
}
