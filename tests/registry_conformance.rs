//! Registry conformance suite: every algorithm in the workspace registry must honor the
//! contract of the unified `Partitioner` trait — full coverage of the vertex set, the spec's
//! `ε` balance bound, and determinism for a fixed seed — on arbitrary small hypergraphs.

use proptest::prelude::*;
use shp::baselines::full_registry;
use shp::core::api::{NoopObserver, PartitionSpec, TraceObserver};
use shp::datagen::{planted_partition, PlantedConfig};
use shp::hypergraph::GraphBuilder;

/// Strategy: an arbitrary small hypergraph as a list of hyperedges over up to `max_data`
/// vertices.
fn arb_hypergraph(max_queries: usize, max_data: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0..max_data, 2..6usize),
        1..max_queries,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract checks for every registered algorithm on one random graph/spec draw:
    /// the outcome covers every data vertex exactly once with an in-range bucket, satisfies
    /// the `ε` capacity bound of the spec, and is identical across two runs with equal specs.
    #[test]
    fn every_registered_algorithm_honors_the_unified_contract(
        edges in arb_hypergraph(24, 24),
        k in 2u32..5,
        epsilon in 0.0f64..0.3,
        seed in 0u64..1_000,
    ) {
        let graph = GraphBuilder::from_hyperedges(edges).unwrap();
        prop_assume!(graph.num_data() >= k as usize);
        let registry = full_registry();
        let spec = PartitionSpec::new(k)
            .with_epsilon(epsilon)
            .with_seed(seed)
            .with_max_iterations(5);
        for name in registry.names() {
            let outcome = registry
                .run(&name, &graph, &spec, &mut NoopObserver)
                .expect("registered algorithm on a valid spec");
            let p = &outcome.partition;
            // Coverage: exactly one bucket per data vertex, every bucket id in range.
            prop_assert_eq!(p.num_data(), graph.num_data(), "{} coverage", &name);
            prop_assert_eq!(p.assignment().len(), graph.num_data(), "{} coverage", &name);
            prop_assert_eq!(p.num_buckets(), k, "{} bucket count", &name);
            prop_assert!(
                p.assignment().iter().all(|&b| b < k),
                "{} produced an out-of-range bucket", &name
            );
            prop_assert_eq!(
                p.bucket_weights().iter().sum::<u64>(),
                p.total_weight(),
                "{} weight bookkeeping", &name
            );
            // Balance: the unified contract guarantees the spec's epsilon capacity.
            prop_assert!(
                p.is_balanced(epsilon),
                "{} violates epsilon {}: weights {:?}",
                &name, epsilon, p.bucket_weights()
            );
            // Reported metrics match the partition they describe.
            prop_assert!((outcome.imbalance - p.imbalance()).abs() < 1e-12, "{}", &name);
            // Determinism: equal spec, equal partition.
            let again = registry
                .run(&name, &graph, &spec, &mut NoopObserver)
                .expect("second run of a registered algorithm");
            prop_assert_eq!(
                p.assignment(), again.partition.assignment(),
                "{} is not deterministic for a fixed seed", &name
            );
        }
    }
}

/// One test drives every algorithm through the shared trait on a planted-partition graph and
/// checks the paper's headline ordering: the SHP family beats the random baseline on fanout.
#[test]
fn shpk_beats_random_baseline_through_the_shared_trait() {
    let (graph, _truth) = planted_partition(&PlantedConfig {
        num_blocks: 4,
        block_size: 64,
        num_queries: 1_024,
        query_degree: 4,
        noise: 0.05,
        seed: 42,
    });
    let registry = full_registry();
    let spec = PartitionSpec::new(4).with_seed(42);
    let mut fanout_of = std::collections::BTreeMap::new();
    for name in registry.names() {
        let outcome = registry
            .run(&name, &graph, &spec, &mut NoopObserver)
            .expect("registered algorithm on a valid spec");
        assert_eq!(outcome.algorithm, name);
        assert_eq!(outcome.partition.num_data(), graph.num_data());
        assert!(outcome.fanout >= 1.0, "{name} fanout {}", outcome.fanout);
        fanout_of.insert(name, outcome.fanout);
    }
    let shpk = fanout_of["shpk"];
    let random = fanout_of["random"];
    assert!(
        shpk <= random,
        "SHP-k fanout {shpk} must not exceed the random baseline {random}"
    );
    // The planted structure is recoverable, so SHP should in fact be far better, not just tied.
    assert!(
        shpk < random * 0.75,
        "SHP-k fanout {shpk} should clearly beat random {random}"
    );
}

/// The observer trace is consistent with the outcome for an iterative algorithm driven through
/// the registry.
#[test]
fn observer_trace_matches_outcome_counters() {
    let (graph, _) = planted_partition(&PlantedConfig {
        num_blocks: 4,
        block_size: 32,
        num_queries: 256,
        query_degree: 4,
        noise: 0.1,
        seed: 7,
    });
    let registry = full_registry();
    let spec = PartitionSpec::new(4).with_seed(7).with_max_iterations(8);
    for name in ["shp2", "shpk", "distributed", "label-propagation"] {
        let mut trace = TraceObserver::default();
        let outcome = registry
            .run(name, &graph, &spec, &mut trace)
            .expect("registered algorithm on a valid spec");
        assert_eq!(
            trace.iterations.len(),
            outcome.iterations,
            "{name} trace length"
        );
        assert_eq!(
            trace.iterations.iter().map(|e| e.moved as u64).sum::<u64>(),
            outcome.moves,
            "{name} move counter"
        );
    }
}
