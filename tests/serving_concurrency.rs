//! Concurrency suite for `shp-serving`'s `EpochSwap`: reads hammered from many threads while
//! a writer performs repeated live swaps must never drop a query or observe a torn partition
//! map. Two placements that disagree on *every* key are alternated, so any torn read —
//! a multiget resolving some keys against the old generation and some against the new —
//! produces an impossible fanout or a wrong value and fails loudly.

use shp::faults::{FaultInjector, FaultPlan};
use shp::hypergraph::{GraphBuilder, Partition};
use shp::serving::{
    value_of, EngineConfig, EpochSwap, PartitionDelta, PartitionSnapshot, ServingEngine,
    ServingError,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const GROUPS: u32 = 8;
const SIZE: u32 = 32;

/// Number of hammering reader threads; `SHP_TEST_WORKERS` (the CI multi-threaded job) raises
/// it so the single-threaded default run cannot mask races.
fn reader_threads() -> usize {
    std::env::var("SHP_TEST_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(4)
}

/// `GROUPS` communities of `SIZE` keys; one query per member spanning its community.
fn community_graph() -> shp::hypergraph::BipartiteGraph {
    let mut b = GraphBuilder::new();
    for g in 0..GROUPS {
        let members: Vec<u32> = (0..SIZE).map(|i| g * SIZE + i).collect();
        for _ in 0..SIZE {
            b.add_query(members.clone());
        }
    }
    b.build().unwrap()
}

/// Groups colocated: every community on its own shard (fanout 1 per community query).
fn aligned(graph: &shp::hypergraph::BipartiteGraph) -> Partition {
    Partition::from_assignment(
        graph,
        GROUPS,
        (0..GROUPS * SIZE).map(|v| v / SIZE).collect(),
    )
    .unwrap()
}

/// Groups scattered round-robin: every community query touches every shard (fanout GROUPS).
/// Disagrees with [`aligned`] on the shard of all but `SIZE` keys.
fn scattered(graph: &shp::hypergraph::BipartiteGraph) -> Partition {
    Partition::from_assignment(
        graph,
        GROUPS,
        (0..GROUPS * SIZE).map(|v| v % GROUPS).collect(),
    )
    .unwrap()
}

/// Raw `EpochSwap` hammering: every loaded snapshot must be *pure* — exactly placement A or
/// exactly placement B, never a mix — and the epochs a reader observes must never go
/// backwards.
#[test]
fn epoch_swap_readers_never_observe_a_torn_or_regressing_generation() {
    let graph = community_graph();
    let a = PartitionSnapshot::from_partition(&aligned(&graph), 0).unwrap();
    let assignment_a = a.assignment().to_vec();
    let swap = EpochSwap::new(a);
    let stop = AtomicBool::new(false);
    let loads = AtomicU64::new(0);
    const SWAPS: u64 = 400;

    std::thread::scope(|scope| {
        let swap_ref = &swap;
        let stop_ref = &stop;
        let loads_ref = &loads;
        let assignment_a = &assignment_a;
        let graph_ref = &graph;
        for _ in 0..reader_threads() {
            scope.spawn(move || {
                let assignment_b: Vec<u32> = scattered(graph_ref).assignment().to_vec();
                let mut last_epoch = 0u64;
                while !stop_ref.load(Ordering::Relaxed) {
                    let snapshot = swap_ref.load();
                    // Purity: the whole assignment equals A's or B's, never a blend.
                    let assignment = snapshot.assignment();
                    assert!(
                        assignment[..] == assignment_a[..] || assignment[..] == assignment_b[..],
                        "torn generation at epoch {}",
                        snapshot.epoch()
                    );
                    // Epochs move forward only.
                    assert!(
                        snapshot.epoch() >= last_epoch,
                        "epoch regressed: {} after {last_epoch}",
                        snapshot.epoch()
                    );
                    last_epoch = snapshot.epoch();
                    loads_ref.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let graph = &graph;
        for epoch in 1..=SWAPS {
            let partition = if epoch % 2 == 1 {
                scattered(graph)
            } else {
                aligned(graph)
            };
            swap_ref.swap(PartitionSnapshot::from_partition(&partition, epoch).unwrap());
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(swap.swap_count(), SWAPS);
    assert!(loads.load(Ordering::Relaxed) > 0, "readers must have run");
}

/// Engine-level hammering: concurrent multigets race repeated `install_partition` swaps.
/// Every multiget must complete with the full, correct value set, its fanout must match one
/// of the two pure placements (1 or GROUPS — anything else is a torn route), and the engine's
/// report must account for every single query issued.
#[test]
fn multigets_survive_live_swaps_without_drops_or_torn_routing() {
    let graph = community_graph();
    let engine = ServingEngine::new(&aligned(&graph), EngineConfig::default()).unwrap();
    engine.reset_metrics();

    const QUERIES_PER_READER: u64 = 300;
    const SWAPS: u64 = 120;
    let readers = reader_threads();
    let done_swapping = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let graph_ref = &graph;
        let done_ref = &done_swapping;

        let clients: Vec<_> = (0..readers)
            .map(|reader| {
                scope.spawn(move || {
                    for i in 0..QUERIES_PER_READER {
                        // Each multiget requests one full community (plus duplicates).
                        let group = ((reader as u64 + i) % GROUPS as u64) as u32;
                        let base = group * SIZE;
                        let mut keys: Vec<u32> = (base..base + SIZE).collect();
                        keys.push(base); // duplicate: must still be answered once
                        let result = engine_ref.multiget(&keys).unwrap();
                        // No drops, correct values, ascending order.
                        assert_eq!(result.values.len(), SIZE as usize);
                        for (offset, &(key, value)) in result.values.iter().enumerate() {
                            assert_eq!(key, base + offset as u32);
                            assert_eq!(value, value_of(key), "wrong record for key {key}");
                        }
                        // Fanout must correspond to a *pure* generation: 1 under the aligned
                        // placement, GROUPS under the scattered one. A torn partition map
                        // would route a community across 2..GROUPS-1 shards.
                        assert!(
                            result.fanout == 1 || result.fanout == GROUPS,
                            "torn routing: community served with fanout {} at epoch {}",
                            result.fanout,
                            result.epoch
                        );
                        let _ = graph_ref; // graph kept alive for symmetry with real replay
                    }
                })
            })
            .collect();

        let swapper = scope.spawn(move || {
            for i in 0..SWAPS {
                let next = if i % 2 == 0 {
                    scattered(graph_ref)
                } else {
                    aligned(graph_ref)
                };
                engine_ref.install_partition(&next).unwrap();
                std::thread::yield_now();
            }
            done_ref.store(true, Ordering::Relaxed);
        });

        for client in clients {
            client.join().expect("client thread panicked");
        }
        swapper.join().expect("swapper thread panicked");
    });

    assert!(done_swapping.load(Ordering::Relaxed));
    assert_eq!(engine.swap_count(), SWAPS);
    let report = engine.report();
    // No serving gap: every issued multiget is accounted for.
    assert_eq!(report.queries, readers as u64 * QUERIES_PER_READER);
    // The readers raced at least one installed generation.
    assert!(report.max_epoch >= 1);
}

/// The rebuilt lock-free metrics record path: multigets hammered from many threads while the
/// swapper installs generation after generation must be accounted **exactly**. The sharded
/// counters, the latency histogram, and the exact per-fanout histogram may lose no update —
/// under the old `Mutex<Vec>` implementation this test merely serialized; under the lock-free
/// one it proves the relaxed-atomic shards still add up to the last query.
#[test]
fn metrics_accounting_stays_exact_while_records_race_live_swaps() {
    let graph = community_graph();
    let engine = ServingEngine::new(&aligned(&graph), EngineConfig::default()).unwrap();
    engine.reset_metrics();

    const QUERIES_PER_READER: u64 = 400;
    const SWAPS: u64 = 100;
    let readers = reader_threads().max(2);

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let graph_ref = &graph;
        let clients: Vec<_> = (0..readers)
            .map(|reader| {
                scope.spawn(move || {
                    for i in 0..QUERIES_PER_READER {
                        let group = ((reader as u64 + i) % GROUPS as u64) as u32;
                        let base = group * SIZE;
                        let keys: Vec<u32> = (base..base + SIZE).collect();
                        engine_ref.multiget(&keys).unwrap();
                    }
                })
            })
            .collect();
        let swapper = scope.spawn(move || {
            for i in 0..SWAPS {
                let next = if i % 2 == 0 {
                    scattered(graph_ref)
                } else {
                    aligned(graph_ref)
                };
                engine_ref.install_partition(&next).unwrap();
                std::thread::yield_now();
            }
        });
        for client in clients {
            client.join().expect("client thread panicked");
        }
        swapper.join().expect("swapper thread panicked");
    });

    let total = readers as u64 * QUERIES_PER_READER;
    let report = engine.report();
    assert_eq!(
        report.queries, total,
        "a dropped record() would show up here"
    );

    // Exact fanout accounting: every multiget recorded exactly one fanout, and each one is a
    // pure generation's (1 aligned, GROUPS scattered).
    let observed: u64 = report.fanout_histogram.iter().sum();
    assert_eq!(observed, total);
    for (fanout, &count) in report.fanout_histogram.iter().enumerate() {
        assert!(
            count == 0 || fanout == 1 || fanout == GROUPS as usize,
            "impossible fanout {fanout} recorded {count} times"
        );
    }

    // The exported telemetry snapshot agrees with the report to the last update: per-shard
    // request counters sum to the total shard touches, and the exact fanout histogram carries
    // the same mass.
    let snapshot = engine.telemetry_snapshot("t");
    assert_eq!(snapshot.counters["t/queries"], total);
    let shard_total: u64 = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("t/shard_requests/"))
        .map(|(_, &count)| count)
        .sum();
    let fanout_mass: u64 = report
        .fanout_histogram
        .iter()
        .enumerate()
        .map(|(fanout, &count)| fanout as u64 * count)
        .sum();
    assert_eq!(shard_total, fanout_mass);
    let exported = &snapshot.histograms["t/fanout"];
    assert_eq!(exported.count, total);
    assert_eq!(exported.sum, fanout_mass as f64);
    // The latency histogram counted every multiget too (out-of-range values land in the
    // underflow bucket, so nothing escapes the count).
    assert_eq!(snapshot.histograms["t/latency"].count, total);
}

/// Delta-map installs raced against concurrent multigets: the controller's `install_delta`
/// path (COW snapshot, moved keys only — no full-map clone) must give readers the same
/// guarantees as a full install. Every multiget resolves a pure generation (fanout 1 or
/// GROUPS, correct values), and the epoch a reader observes never goes backwards.
#[test]
fn delta_installs_race_concurrent_readers_without_torn_reads() {
    let graph = community_graph();
    let engine = ServingEngine::new(&aligned(&graph), EngineConfig::default()).unwrap();
    engine.reset_metrics();

    const QUERIES_PER_READER: u64 = 300;
    const DELTAS: u64 = 120;
    let readers = reader_threads();

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let graph_ref = &graph;
        let clients: Vec<_> = (0..readers)
            .map(|reader| {
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    for i in 0..QUERIES_PER_READER {
                        let group = ((reader as u64 + i) % GROUPS as u64) as u32;
                        let base = group * SIZE;
                        let keys: Vec<u32> = (base..base + SIZE).collect();
                        let result = engine_ref.multiget(&keys).unwrap();
                        assert_eq!(result.values.len(), SIZE as usize);
                        for (offset, &(key, value)) in result.values.iter().enumerate() {
                            assert_eq!(key, base + offset as u32);
                            assert_eq!(value, value_of(key), "wrong record for key {key}");
                        }
                        assert!(
                            result.fanout == 1 || result.fanout == GROUPS,
                            "torn routing: community served with fanout {} at epoch {}",
                            result.fanout,
                            result.epoch
                        );
                        assert!(
                            result.epoch >= last_epoch,
                            "epoch regressed: {} after {last_epoch}",
                            result.epoch
                        );
                        last_epoch = result.epoch;
                    }
                })
            })
            .collect();

        // The single writer flips the live placement via *deltas* computed against whatever
        // snapshot is current — exactly what the repartition controller does per epoch.
        let swapper = scope.spawn(move || {
            for i in 0..DELTAS {
                let target = if i % 2 == 0 {
                    scattered(graph_ref)
                } else {
                    aligned(graph_ref)
                };
                let base = engine_ref.current_snapshot();
                let delta = PartitionDelta::between(&base, &target).unwrap();
                // Alternating full-disagreement placements: all but SIZE keys move each time.
                assert_eq!(delta.len(), ((GROUPS - 1) * SIZE) as usize);
                engine_ref.install_delta(&delta).unwrap();
                std::thread::yield_now();
            }
        });

        for client in clients {
            client.join().expect("client thread panicked");
        }
        swapper.join().expect("swapper thread panicked");
    });

    assert_eq!(engine.current_epoch(), DELTAS);
    let report = engine.report();
    assert_eq!(report.queries, readers as u64 * QUERIES_PER_READER);
    assert!(report.max_epoch >= 1);
}

/// Communities 1..GROUPS rotated one shard to the right among the *live* shards; community 0
/// stays on shard 0. Disagrees with [`aligned`] on every key outside community 0 while never
/// placing anything on shard 0, so a scripted crash of shard 0 keeps one exact, static set of
/// unreachable keys across every delta install.
fn live_rotated(graph: &shp::hypergraph::BipartiteGraph) -> Partition {
    Partition::from_assignment(
        graph,
        GROUPS,
        (0..GROUPS * SIZE)
            .map(|v| {
                let g = v / SIZE;
                if g == 0 {
                    0
                } else {
                    (g % (GROUPS - 1)) + 1
                }
            })
            .collect(),
    )
    .unwrap()
}

/// Partial-failure invariant under concurrency: with shard 0 scripted dead and no replicas,
/// every multiget must degrade **precisely** — `missing_keys` is exactly the requested keys
/// of the dead community, every other key is served with the correct value, and the two sets
/// stay disjoint and exhaustive — while a writer races delta installs that shuffle all live
/// communities between shards. A torn fault path would either drop a live key into
/// `missing_keys` or invent a value for a dead one.
#[test]
fn degraded_multigets_stay_precise_while_deltas_race_live_installs() {
    let graph = community_graph();
    let injector = Arc::new(FaultInjector::new(FaultPlan::new().crash(0, 0), 0x0DD));
    let engine = ServingEngine::new(&aligned(&graph), EngineConfig::default())
        .unwrap()
        .with_fault_injector(injector);
    engine.reset_metrics();

    const QUERIES_PER_READER: u64 = 300;
    const DELTAS: u64 = 120;
    let readers = reader_threads();

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let graph_ref = &graph;
        let clients: Vec<_> = (0..readers)
            .map(|reader| {
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    for i in 0..QUERIES_PER_READER {
                        // One live community, plus (on even queries) half of the dead one.
                        let group = 1 + ((reader as u64 + i) % (GROUPS as u64 - 1)) as u32;
                        let base = group * SIZE;
                        let mut keys: Vec<u32> = (base..base + SIZE).collect();
                        let include_dead = i % 2 == 0;
                        if include_dead {
                            keys.extend(0..SIZE / 2);
                        }
                        let result = engine_ref.multiget(&keys).unwrap();

                        // Missing is exactly the requested ∩ dead-community set — never a
                        // live key, never a dead key served.
                        let expected_missing: Vec<u32> = if include_dead {
                            (0..SIZE / 2).collect()
                        } else {
                            Vec::new()
                        };
                        assert_eq!(result.missing_keys, expected_missing);
                        assert_eq!(result.values.len(), SIZE as usize);
                        for (offset, &(key, value)) in result.values.iter().enumerate() {
                            assert_eq!(key, base + offset as u32);
                            assert_eq!(value, value_of(key), "wrong record for key {key}");
                        }
                        assert_eq!(result.is_degraded(), include_dead);
                        assert!(
                            result.epoch >= last_epoch,
                            "epoch regressed: {} after {last_epoch}",
                            result.epoch
                        );
                        last_epoch = result.epoch;

                        // The typed escalation matches the partial result.
                        if include_dead {
                            let err = result.require_complete().unwrap_err();
                            assert!(matches!(
                                err,
                                ServingError::DegradedService { missing }
                                    if missing == (SIZE / 2) as usize
                            ));
                        } else {
                            result.require_complete().unwrap();
                        }
                    }
                })
            })
            .collect();

        // The writer shuffles every *live* community between shards via deltas; the dead
        // community never moves, so the expected missing set above is exact at every epoch.
        let swapper = scope.spawn(move || {
            for i in 0..DELTAS {
                let target = if i % 2 == 0 {
                    live_rotated(graph_ref)
                } else {
                    aligned(graph_ref)
                };
                let base = engine_ref.current_snapshot();
                let delta = PartitionDelta::between(&base, &target).unwrap();
                assert_eq!(delta.len(), ((GROUPS - 1) * SIZE) as usize);
                engine_ref.install_delta(&delta).unwrap();
                std::thread::yield_now();
            }
        });

        for client in clients {
            client.join().expect("client thread panicked");
        }
        swapper.join().expect("swapper thread panicked");
    });

    // Degradation accounting is exact: every even-indexed query of every reader was degraded.
    let total = readers as u64 * QUERIES_PER_READER;
    let degraded = readers as u64 * QUERIES_PER_READER / 2;
    let report = engine.report();
    assert_eq!(report.queries, total);
    assert_eq!(report.degraded_queries, degraded);
    assert_eq!(report.missing_keys, degraded * (SIZE / 2) as u64);
    assert!((report.availability - 0.5).abs() < 1e-12);
}

/// The same scripted crash with 2-way replication: failover routing must keep every racing
/// multiget **complete** and correct — the dead primary's keys are served from its replica
/// while the writer races delta installs over the live communities.
#[test]
fn replicated_failover_keeps_results_complete_while_deltas_race() {
    let graph = community_graph();
    let injector = Arc::new(FaultInjector::new(FaultPlan::new().crash(0, 0), 0x0DD));
    let engine = ServingEngine::new(
        &aligned(&graph),
        EngineConfig {
            replication: 2,
            ..EngineConfig::default()
        },
    )
    .unwrap()
    .with_fault_injector(injector);
    engine.reset_metrics();

    const QUERIES_PER_READER: u64 = 300;
    const DELTAS: u64 = 120;
    let readers = reader_threads();

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let graph_ref = &graph;
        let clients: Vec<_> = (0..readers)
            .map(|reader| {
                scope.spawn(move || {
                    for i in 0..QUERIES_PER_READER {
                        let group = 1 + ((reader as u64 + i) % (GROUPS as u64 - 1)) as u32;
                        let base = group * SIZE;
                        let mut keys: Vec<u32> = (base..base + SIZE).collect();
                        keys.extend(0..SIZE / 2); // dead primary — must fail over
                        let result = engine_ref
                            .multiget(&keys)
                            .unwrap()
                            .require_complete()
                            .unwrap();
                        assert_eq!(result.values.len(), (SIZE + SIZE / 2) as usize);
                        for &(key, value) in &result.values {
                            assert_eq!(value, value_of(key), "wrong record for key {key}");
                        }
                    }
                })
            })
            .collect();

        let swapper = scope.spawn(move || {
            for i in 0..DELTAS {
                let target = if i % 2 == 0 {
                    live_rotated(graph_ref)
                } else {
                    aligned(graph_ref)
                };
                let base = engine_ref.current_snapshot();
                let delta = PartitionDelta::between(&base, &target).unwrap();
                engine_ref.install_delta(&delta).unwrap();
                std::thread::yield_now();
            }
        });

        for client in clients {
            client.join().expect("client thread panicked");
        }
        swapper.join().expect("swapper thread panicked");
    });

    let report = engine.report();
    assert_eq!(report.queries, readers as u64 * QUERIES_PER_READER);
    assert_eq!(report.degraded_queries, 0, "failover must mask the crash");
    assert_eq!(report.availability, 1.0);
    assert!(
        report.retries > 0,
        "the dead primary must have cost retries"
    );
}

/// A sequence of delta installs must leave the engine in a state **bit-identical** to the
/// same sequence done through full-map installs: same snapshot pages, same epochs, same
/// multiget values *and latencies* (the per-shard RNG reseeds identically on both paths).
#[test]
fn delta_install_sequence_is_bit_identical_to_full_installs() {
    let graph = community_graph();
    let full = ServingEngine::new(&aligned(&graph), EngineConfig::default()).unwrap();
    let delta = ServingEngine::new(&aligned(&graph), EngineConfig::default()).unwrap();

    for step in 0..6u64 {
        let target = if step % 2 == 0 {
            scattered(&graph)
        } else {
            aligned(&graph)
        };
        full.install_partition(&target).unwrap();
        let diff = PartitionDelta::between(&delta.current_snapshot(), &target).unwrap();
        delta.install_delta(&diff).unwrap();

        assert_eq!(full.current_epoch(), delta.current_epoch());
        assert_eq!(full.current_snapshot(), delta.current_snapshot());
        // Identical multigets resolve to identical results on both engines — values, fanout,
        // epoch, and the (seeded) simulated latency.
        for group in 0..GROUPS {
            let keys: Vec<u32> = (group * SIZE..(group + 1) * SIZE).collect();
            let a = full.multiget(&keys).unwrap();
            let b = delta.multiget(&keys).unwrap();
            assert_eq!(a.values, b.values);
            assert_eq!(a.fanout, b.fanout);
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.latency.to_bits(), b.latency.to_bits());
        }
    }
}
