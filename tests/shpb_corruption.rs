//! Adversarial `.shpb` corruption suite: no byte pattern may panic a reader.
//!
//! The `.shpb` container is the boundary where untrusted disk bytes become borrowed CSR
//! views, so both readers — the copying `parse_shpb_bytes` and the zero-copy
//! `map_shpb_file` — must turn **every** corruption into a typed `GraphError`, never a
//! panic, an out-of-bounds index, or an attacker-sized allocation. This suite drives both
//! paths with proptest-generated corruptions of a valid container:
//!
//! * truncations at every prefix length (headers, section bodies, the trailer);
//! * single-byte and single-bit flips anywhere in the file — **including section bodies**,
//!   which structural validation alone would miss for payload (adjacency id) bytes and which
//!   the version-2 body-checksum trailer exists to catch;
//! * oversized header length fields with a *recomputed valid header checksum*, so the size
//!   sanity checks (not the checksum) are what must reject multi-gigabyte claims.

use proptest::prelude::*;
use shp::hypergraph::io::{map_shpb_file, parse_shpb_bytes, write_shpb};
use shp::hypergraph::{BipartiteGraph, GraphBuilder, GraphError};

/// A fixture container exercising every section, weights included.
fn fixture_bytes() -> Vec<u8> {
    let mut b = GraphBuilder::new();
    let mut next = 1u32;
    for q in 0..24u32 {
        let mut pins = vec![q % 17, (q * 7 + 3) % 17];
        if q % 3 == 0 {
            pins.push(next % 17);
            next = next.wrapping_mul(31).wrapping_add(7);
        }
        b.add_query_slice(&pins);
    }
    let graph = b
        .build()
        .unwrap()
        .with_data_weights((1..=17).collect())
        .unwrap();
    let mut bytes = Vec::new();
    write_shpb(&graph, &mut bytes).unwrap();
    bytes
}

/// Feeds `bytes` to both readers; both must fail with a typed error (the value is the error's
/// display string of the copying reader, for the callers that assert on categories).
///
/// The mmap path goes through a real temp file, exactly like production opens.
fn both_readers_reject(bytes: &[u8], tag: &str) -> String {
    let copied = parse_shpb_bytes(bytes);
    let path = std::env::temp_dir().join(format!(
        "shp-corrupt-{}-{tag}-{}.shpb",
        std::process::id(),
        bytes.len()
    ));
    std::fs::write(&path, bytes).unwrap();
    let mapped = map_shpb_file(&path);
    std::fs::remove_file(&path).ok();

    let copied_err = match copied {
        Ok(_) => panic!("{tag}: the copying reader accepted corrupt bytes"),
        Err(e) => e,
    };
    match mapped {
        Ok(_) => panic!("{tag}: the mmap reader accepted corrupt bytes"),
        Err(e) => {
            // Both paths classify corruption as a binary-container error — or, when the
            // flip lands in the version field, as the dedicated version error. (IO errors
            // cannot occur here: the file exists and the bytes are readable.)
            assert!(
                matches!(
                    copied_err,
                    GraphError::Binary { .. } | GraphError::UnsupportedVersion { .. }
                ),
                "{tag}: copying reader returned a non-binary error: {copied_err:?}"
            );
            assert!(
                matches!(
                    e,
                    GraphError::Binary { .. } | GraphError::UnsupportedVersion { .. }
                ),
                "{tag}: mmap reader returned a non-binary error: {e:?}"
            );
        }
    }
    copied_err.to_string()
}

/// Writes a `u64` into a header field and re-stamps a *valid* FNV-1a checksum, so the file
/// passes the checksum gate and the dimension sanity checks are what must reject it.
fn forge_header_field(bytes: &[u8], field_offset: usize, value: u64) -> Vec<u8> {
    let mut forged = bytes.to_vec();
    forged[field_offset..field_offset + 8].copy_from_slice(&value.to_le_bytes());
    let checksum = forged[..40].iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    forged[40..48].copy_from_slice(&checksum.to_le_bytes());
    forged
}

#[test]
fn the_fixture_itself_roundtrips_through_both_readers() {
    let bytes = fixture_bytes();
    let copied = parse_shpb_bytes(&bytes).unwrap();
    let path = std::env::temp_dir().join(format!("shp-corrupt-ok-{}.shpb", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    let mapped = map_shpb_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(copied, mapped);
    assert!(copied.has_weights());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strict prefix of a valid container is rejected by both readers.
    #[test]
    fn truncations_are_typed_errors(cut_seed in 0usize..10_000) {
        let bytes = fixture_bytes();
        let cut = cut_seed % bytes.len();
        both_readers_reject(&bytes[..cut], "trunc");
    }

    /// Any single corrupted byte anywhere in the file — header, offsets, adjacency bodies,
    /// weights, trailer — is caught by both readers. Payload bytes that structural checks
    /// cannot see (e.g. one adjacency id swapped for another valid one) are exactly what the
    /// body-checksum trailer covers.
    #[test]
    fn single_byte_flips_are_typed_errors(pos_seed in 0usize..100_000, xor_seed in 0u8..255) {
        let bytes = fixture_bytes();
        let xor = xor_seed.wrapping_add(1); // 1..=255: never the identity mask
        let pos = pos_seed % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= xor;
        both_readers_reject(&corrupt, "byteflip");
    }

    /// Single-bit flips restricted to the section bodies (past the header, before the
    /// trailer): the hardest corruption class, invisible to header validation.
    #[test]
    fn single_bit_flips_in_section_bodies_are_typed_errors(
        pos_seed in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let bytes = fixture_bytes();
        let body = 48..bytes.len() - 8;
        let pos = body.start + pos_seed % (body.end - body.start);
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        both_readers_reject(&corrupt, "bitflip");
    }

    /// Oversized length fields behind a *valid* checksum must be rejected by size/offset
    /// sanity checks — quickly, and without attacker-controlled allocations. (The readers
    /// slice before they copy, so a `u64::MAX` pin count can at most produce an error.)
    #[test]
    fn oversized_header_counts_with_valid_checksums_are_typed_errors(
        field in 0usize..3,
        value_pick in 0usize..5,
    ) {
        let bytes = fixture_bytes();
        let value = [
            u64::MAX,
            u64::MAX / 2,
            1u64 << 40,
            (u32::MAX as u64) + 1,
            1_000_000_000,
        ][value_pick];
        let offset = [8usize, 16, 24][field]; // num_queries, num_data, num_pins
        let forged = forge_header_field(&bytes, offset, value);
        let message = both_readers_reject(&forged, "oversized");
        // The rejection must come from structural validation, not an OOM or the checksum
        // (which we deliberately made valid).
        prop_assert!(
            !message.contains("header checksum"),
            "expected a structural rejection, got: {message}"
        );
    }

    /// Flipping *two* independent bytes (a crude model of torn writes) is still caught.
    #[test]
    fn double_byte_flips_are_typed_errors(
        a_seed in 0usize..100_000,
        b_seed in 0usize..100_000,
        xor_a in 0u8..255,
        xor_b in 0u8..255,
    ) {
        let bytes = fixture_bytes();
        let a = a_seed % bytes.len();
        let b = b_seed % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[a] ^= xor_a.wrapping_add(1);
        corrupt[b] ^= xor_b.wrapping_add(1);
        // Skip the degenerate case where the two flips cancelled (same position, same mask).
        if corrupt != bytes {
            both_readers_reject(&corrupt, "torn");
        }
    }
}

/// Non-proptest spot checks for the corruption classes with exact expected diagnostics.
#[test]
fn corruption_diagnostics_name_the_failing_layer() {
    let bytes = fixture_bytes();

    // Garbage magic.
    let mut magic = bytes.clone();
    magic[0] = b'X';
    assert!(both_readers_reject(&magic, "magic").contains("magic"));

    // An adjacency id flip: the copying reader catches it structurally (the flip breaks
    // either the ascending order or the cross-consistency with the transposed side), the
    // mmap reader by checksum. Both must reject it.
    let parsed: BipartiteGraph = parse_shpb_bytes(&bytes).unwrap();
    let (q, d, p) = (parsed.num_queries(), parsed.num_data(), parsed.num_edges());
    let mut payload = bytes.clone();
    let adjacency_start = 48 + (q + 1) * 8;
    payload[adjacency_start] ^= 0x01;
    both_readers_reject(&payload, "payload");

    // A weights byte flip: structurally invisible — no offsets, no ordering, every value
    // legal — so *only* the version-2 body checksum can catch it, on both readers.
    let mut weights = bytes.clone();
    let weights_start = 48 + (q + 1) * 8 + p * 4 + (d + 1) * 8 + p * 4;
    weights[weights_start] ^= 0x01;
    assert!(
        both_readers_reject(&weights, "weights").contains("checksum"),
        "a weights flip must be caught by the body checksum"
    );

    // Trailer corruption.
    let mut trailer = bytes.clone();
    let last = trailer.len() - 1;
    trailer[last] ^= 0xFF;
    assert!(both_readers_reject(&trailer, "trailer").contains("body checksum"));
}
