//! Storage-representation conformance suite: where a graph's bytes live must never change
//! results.
//!
//! `BipartiteGraph`'s CSR sections are served either from owned heap vectors or from borrowed
//! views into a memory-mapped `.shpb` container. This suite locks in the contract that the
//! two representations are observationally identical:
//!
//! * every registry algorithm produces a **bit-identical** `PartitionOutcome` (assignment,
//!   fanout/p-fanout/imbalance bits, iteration and move counts) and iteration trace whether
//!   the graph was parsed from hMetis text, read (copied) from a `.shpb` container, or
//!   memory-mapped from the same container — on fixed-seed planted-partition and power-law
//!   graphs, for multiple worker counts;
//! * graph transformations (`induced_subgraph`, `filter_small_queries`) over a borrowed
//!   graph return fully **owned** graphs equal to their owned-input counterparts, and stay
//!   valid after the mapped source graph is dropped (no dangling borrows);
//! * `memory_bytes()` reports only owned heap (0 for a mapped graph), with the file-backed
//!   footprint reported separately via `mapped_bytes()`.
//!
//! Same discipline as `tests/parallel_conformance.rs`, which does this for worker counts.

use shp::baselines::full_registry;
use shp::core::api::{NoopObserver, PartitionOutcome, PartitionSpec, TraceObserver};
use shp::datagen::{planted_partition, power_law_bipartite, PlantedConfig, PowerLawConfig};
use shp::hypergraph::{io, BipartiteGraph};

/// Worker counts the comparisons run at: a small fixed ladder plus `SHP_TEST_WORKERS` when
/// set, so the CI matrix can force extra counts.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 4];
    if let Some(extra) = std::env::var("SHP_TEST_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&w| w >= 1)
    {
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

fn planted_graph() -> BipartiteGraph {
    planted_partition(&PlantedConfig {
        num_blocks: 4,
        block_size: 96,
        num_queries: 1_024,
        query_degree: 5,
        noise: 0.08,
        seed: 0x5047,
    })
    .0
}

fn power_law_graph() -> BipartiteGraph {
    power_law_bipartite(&PowerLawConfig {
        num_queries: 900,
        num_data: 700,
        min_degree: 2,
        max_degree: 40,
        seed: 0x5047,
        ..Default::default()
    })
}

/// The three storage representations of one graph, produced through the full IO stack:
/// hMetis text → owned, `.shpb` copying reader → owned, `.shpb` mmap open → borrowed.
fn load_three_ways(graph: &BipartiteGraph, tag: &str) -> Vec<(&'static str, BipartiteGraph)> {
    let dir = std::env::temp_dir().join(format!("shp-storage-conf-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let text_path = dir.join("g.hgr");
    let bin_path = dir.join("g.shpb");
    io::write_hmetis_file(graph, &text_path).unwrap();
    io::write_shpb_file(graph, &bin_path).unwrap();

    let from_text = io::read_hmetis_file(&text_path).unwrap();
    let from_shpb = io::read_shpb_file(&bin_path).unwrap();
    let mapped = io::map_shpb_file(&bin_path).unwrap();
    assert!(!from_text.is_mapped());
    assert!(!from_shpb.is_mapped());
    assert!(mapped.is_mapped());
    // The mapping holds the file open; removal is fine on unix (the pages stay valid), and
    // doing it here keeps the temp dir clean whatever order the tests run in.
    std::fs::remove_dir_all(&dir).ok();
    vec![
        ("owned-from-text", from_text),
        ("owned-from-shpb", from_shpb),
        ("mmap-borrowed", mapped),
    ]
}

/// The exact-equality fingerprint of an outcome. Floats are compared by bit pattern — "close
/// enough" would hide storage-dependent traversal differences, which are precisely the bug
/// class this suite exists to catch.
type Fingerprint = (Vec<u32>, u64, u64, u64, usize, u64);

fn fingerprint(outcome: &PartitionOutcome) -> Fingerprint {
    (
        outcome.partition.assignment().to_vec(),
        outcome.fanout.to_bits(),
        outcome.p_fanout.to_bits(),
        outcome.imbalance.to_bits(),
        outcome.iterations,
        outcome.moves,
    )
}

/// Every registry algorithm must produce bit-identical outcomes across the three load paths,
/// on both fixed-seed graphs, for every worker count.
#[test]
fn all_registry_algorithms_are_bit_identical_across_storage_representations() {
    let registry = full_registry();
    let counts = worker_counts();
    for (graph_name, graph, k) in [
        ("planted", planted_graph(), 4u32),
        ("power-law", power_law_graph(), 8u32),
    ] {
        let loaded = load_three_ways(&graph, graph_name);
        // The representations already compare equal as graphs (PartialEq reads through the
        // borrowed views) — the algorithm runs below then catch any divergence in what the
        // accessors actually serve.
        for (load_name, g) in &loaded {
            assert_eq!(
                g, &graph,
                "{graph_name}: {load_name} load changed the graph"
            );
        }
        for name in registry.names() {
            for &workers in &counts {
                let spec = PartitionSpec::new(k)
                    .with_seed(0x5047)
                    .with_max_iterations(4)
                    .with_workers(workers);
                let mut baseline: Option<Fingerprint> = None;
                for (load_name, g) in &loaded {
                    let outcome = registry
                        .run(&name, g, &spec, &mut NoopObserver)
                        .expect("registered algorithm on a valid spec");
                    let fp = fingerprint(&outcome);
                    match &baseline {
                        None => baseline = Some(fp),
                        Some(expected) => assert_eq!(
                            &fp, expected,
                            "{name} on {graph_name}: outcome diverged on the {load_name} \
                             representation at workers={workers}"
                        ),
                    }
                }
            }
        }
    }
}

/// The per-iteration trace (the observable refinement history) must also be independent of
/// the storage representation, not just the final partition.
#[test]
fn iteration_traces_are_identical_across_storage_representations() {
    let graph = planted_graph();
    let loaded = load_three_ways(&graph, "traces");
    let registry = full_registry();
    for name in ["shpk", "shp2", "distributed"] {
        let mut baseline: Option<Vec<(usize, usize, u64)>> = None;
        for (load_name, g) in &loaded {
            let spec = PartitionSpec::new(4)
                .with_seed(7)
                .with_max_iterations(5)
                .with_workers(2);
            let mut trace = TraceObserver::default();
            registry
                .run(name, g, &spec, &mut trace)
                .expect("valid spec");
            let events: Vec<(usize, usize, u64)> = trace
                .iterations
                .iter()
                .map(|e| (e.iteration, e.moved, e.fanout.to_bits()))
                .collect();
            match &baseline {
                None => baseline = Some(events),
                Some(expected) => assert_eq!(
                    &events, expected,
                    "{name}: iteration trace diverged on the {load_name} representation"
                ),
            }
        }
    }
}

/// A mapped graph owns no CSR heap (`memory_bytes() == 0`); its footprint is the mapped file
/// sections. An owned graph is the exact opposite.
#[test]
fn memory_accounting_distinguishes_owned_from_borrowed_storage() {
    let graph = power_law_graph();
    let dir = std::env::temp_dir().join(format!("shp-storage-mem-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("g.shpb");
    io::write_shpb_file(&graph, &bin_path).unwrap();
    let mapped = io::map_shpb_file(&bin_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert!(graph.memory_bytes() > 0);
    assert_eq!(graph.mapped_bytes(), 0);
    assert_eq!(
        mapped.memory_bytes(),
        0,
        "a mapped graph must report no owned CSR heap"
    );
    // The mapped sections cover exactly the owned graph's CSR payload: same element counts,
    // same element widths.
    assert_eq!(mapped.mapped_bytes(), graph.memory_bytes());
}

/// `induced_subgraph` and `filter_small_queries` over a borrowed graph must return owned
/// graphs — equal to their owned-input counterparts and alive after the mapped source (and
/// with it the underlying mapping) is dropped.
#[test]
fn transformations_of_a_borrowed_graph_return_owned_graphs_that_outlive_the_mapping() {
    let graph = power_law_graph();
    let dir = std::env::temp_dir().join(format!("shp-storage-sub-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("g.shpb");
    io::write_shpb_file(&graph, &bin_path).unwrap();
    let mapped = io::map_shpb_file(&bin_path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let subset: Vec<u32> = (0..graph.num_data() as u32).step_by(3).collect();
    let (owned_sub, owned_ids) = graph.induced_subgraph(&subset, 2);
    let (mapped_sub, mapped_ids) = mapped.induced_subgraph(&subset, 2);
    let owned_filtered = graph.filter_small_queries(3);
    let mapped_filtered = mapped.filter_small_queries(3);

    // Same results from both representations, and the derived graphs own their storage.
    assert_eq!(owned_ids, mapped_ids);
    assert_eq!(owned_sub, mapped_sub);
    assert_eq!(owned_filtered, mapped_filtered);
    assert!(!mapped_sub.is_mapped());
    assert!(!mapped_filtered.is_mapped());
    assert!(mapped_sub.memory_bytes() > 0);

    // Drop the mapped source: the derived graphs must stay fully usable (they hold no
    // references into the mapping).
    drop(mapped);
    assert_eq!(mapped_sub, owned_sub);
    let total_pins: usize = (0..mapped_filtered.num_queries() as u32)
        .map(|q| mapped_filtered.query_neighbors(q).len())
        .sum();
    assert_eq!(total_pins, mapped_filtered.num_edges());
}
