//! Bounded-memory gate for the streaming `.shpb` writer.
//!
//! This binary installs a peak-live-tracking global allocator and holds exactly one test, so
//! the measurement cannot be polluted by concurrent tests in the same process (the bench
//! crate's `CountingAllocator` counts allocations but not deallocations, so it cannot see
//! *live* footprint — this gate needs its own allocator).
//!
//! The claim under test: streaming a graph to disk peaks at `O(D + chunk)` live heap — the
//! degree/offset table plus one bounded transpose window — not at `O(P)` like materializing
//! the graph does. A generator whose CSR would occupy megabytes must stream through a peak
//! several times smaller than the graph itself.

use shp::datagen::{power_law_bipartite, PowerLawConfig, PowerLawStream};
use shp::hypergraph::io::stream_shpb_file_with;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tracks live bytes and their high-water mark. Relaxed ordering is fine: the only test is
/// single-threaded, and approximate peaks are all the gate needs.
struct PeakTracking;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for PeakTracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                    + (new_size - layout.size());
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: PeakTracking = PeakTracking;

/// Resets the high-water mark to the current live level and runs `f`, returning the peak
/// *additional* live bytes `f` reached above its starting point.
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let value = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (value, peak.saturating_sub(base))
}

#[test]
fn streaming_peaks_far_below_the_materialized_graph() {
    let config = PowerLawConfig {
        num_queries: 40_000,
        num_data: 12_000,
        min_degree: 4,
        max_degree: 60,
        exponent: 2.0,
        preferential: 0.5,
        seed: 0x5047,
    };

    // The materialized footprint: the owned CSR alone (ignoring the builder's transient
    // arena, which makes materializing even more expensive than this number).
    let (graph_bytes, materialize_peak) = peak_during(|| {
        let graph = power_law_bipartite(&config);
        graph.memory_bytes()
    });
    assert!(
        graph_bytes > 2 << 20,
        "fixture too small to be meaningful: CSR is only {graph_bytes} bytes"
    );
    assert!(materialize_peak >= graph_bytes);

    // Streaming the very same graph to disk with a small transpose window. The peak must be
    // bounded by O(D + chunk) — the degree table (12k × 8 B), the writer's fixed buffers
    // (~320 KiB of BufWriter + staging), and the 8k-pin window — and must stay several times
    // below the graph it would have taken to materialize.
    let path = std::env::temp_dir().join(format!("shp-stream-mem-{}.shpb", std::process::id()));
    let (stats, stream_peak) = peak_during(|| {
        let mut stream = PowerLawStream::new(config.clone());
        stream_shpb_file_with(&mut stream, &path, 8 << 10).unwrap()
    });
    std::fs::remove_file(&path).ok();

    assert_eq!(stats.num_queries as usize, config.num_queries);
    assert!(stats.num_pins as usize * 8 > graph_bytes / 2, "sanity");
    assert!(
        stream_peak * 4 < graph_bytes,
        "streaming peaked at {stream_peak} bytes, more than a quarter of the {graph_bytes}-byte \
         CSR it avoids materializing"
    );
    assert!(
        stream_peak < materialize_peak / 4,
        "streaming peak {stream_peak} vs materialization peak {materialize_peak}"
    );
}
