//! Round-trip property suite for the streaming `.shpb` writer.
//!
//! `stream_shpb_file` promises **byte identity**: for any deterministic query stream, the
//! container it writes in bounded memory is exactly the file `write_shpb` produces from the
//! materialized graph of the same stream — same canonicalization, same section bytes, same
//! checksums. This suite drives that promise with proptest-generated hyperedge lists and
//! power-law generator configs, across transpose-window sizes down to a single pin (the
//! worst case for the multi-pass transpose). The companion memory gate lives in
//! `tests/streaming_memory.rs`, a separate binary so its peak-allocation measurement is not
//! polluted by concurrent tests.

use proptest::prelude::*;
use shp::datagen::{power_law_bipartite, PowerLawConfig, PowerLawStream};
use shp::hypergraph::io::{parse_shpb_bytes, stream_shpb_file_with, write_shpb};
use shp::hypergraph::GraphBuilder;

/// Strategy: an arbitrary small hypergraph as a list of hyperedges (possibly unsorted,
/// possibly with duplicate pins, possibly empty) over up to `max_data` vertices.
fn arb_hyperedges(max_queries: usize, max_data: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0..max_data, 0..9usize),
        0..max_queries,
    )
}

/// Streams `queries` to a temp file with the given window size and returns the bytes.
fn stream_bytes(queries: &[Vec<u32>], chunk_pins: usize, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!(
        "shp-streamrt-{}-{tag}-{chunk_pins}.shpb",
        std::process::id()
    ));
    let mut source: Vec<Vec<u32>> = queries.to_vec();
    stream_shpb_file_with(&mut source, &path, chunk_pins).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// `write_shpb` of the materialized graph — the byte-identity oracle.
fn materialized_bytes(queries: &[Vec<u32>]) -> Vec<u8> {
    let mut b = GraphBuilder::new();
    for pins in queries {
        b.add_query_slice(pins);
    }
    let graph = b.build().unwrap();
    let mut bytes = Vec::new();
    write_shpb(&graph, &mut bytes).unwrap();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary hyperedge lists and window sizes, the streamed container is
    /// byte-identical to the materialized one, and reads back to the same graph.
    #[test]
    fn streamed_bytes_equal_materialized_bytes(
        queries in arb_hyperedges(30, 40),
        chunk_pick in 0usize..4,
    ) {
        let chunk_pins = [1usize, 3, 16, 1 << 20][chunk_pick];
        let streamed = stream_bytes(&queries, chunk_pins, "arb");
        let oracle = materialized_bytes(&queries);
        prop_assert_eq!(&streamed, &oracle, "chunk_pins={}", chunk_pins);

        // And the container parses back to the builder's graph.
        let mut b = GraphBuilder::new();
        for pins in &queries {
            b.add_query_slice(pins);
        }
        prop_assert_eq!(parse_shpb_bytes(&streamed).unwrap(), b.build().unwrap());
    }

    /// The same identity holds for the power-law generator stream — the production source of
    /// datagen-streamed containers — across seeds and shapes.
    #[test]
    fn power_law_streams_equal_their_materialized_graphs(
        num_queries in 1usize..120,
        num_data in 1usize..90,
        min_degree in 1usize..4,
        extra_degree in 0usize..8,
        seed in 0u64..1_000,
        chunk_pick in 0usize..3,
    ) {
        let config = PowerLawConfig {
            num_queries,
            num_data,
            min_degree,
            max_degree: min_degree + extra_degree,
            seed,
            ..Default::default()
        };
        let chunk_pins = [1usize, 7, 1 << 20][chunk_pick];
        let path = std::env::temp_dir().join(format!(
            "shp-streamrt-pl-{}-{chunk_pins}.shpb",
            std::process::id()
        ));
        let mut stream = PowerLawStream::new(config.clone());
        let stats = stream_shpb_file_with(&mut stream, &path, chunk_pins).unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let graph = power_law_bipartite(&config);
        let mut oracle = Vec::new();
        write_shpb(&graph, &mut oracle).unwrap();
        prop_assert_eq!(&streamed, &oracle, "chunk_pins={}", chunk_pins);
        prop_assert_eq!(stats.num_queries as usize, graph.num_queries());
        prop_assert_eq!(stats.num_data as usize, graph.num_data());
        prop_assert_eq!(stats.num_pins as usize, graph.num_edges());
        prop_assert_eq!(stats.bytes_written as usize, streamed.len());
    }
}
