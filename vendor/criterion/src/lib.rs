//! Vendored stand-in for the [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Provides the `criterion_group!`/`criterion_main!` entry points, benchmark groups, and the
//! `Bencher::iter`/`iter_batched` timing loops used by this workspace's benches, with plain
//! wall-clock measurement: each benchmark runs `sample_size` timed samples (after one warmup)
//! and prints min / mean / max to stdout. There is no statistical analysis, HTML report, or
//! baseline comparison — just enough to compare alternatives on the same machine in one run.
//!
//! Like the real criterion, passing `--quick` on the bench command line (e.g.
//! `cargo bench -- --quick`) switches to smoke mode: sample sizes are clamped to 2, so CI can
//! exercise every benchmark's code path — including correctness assertions baked into bench
//! binaries — in seconds rather than minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// Number of timed samples per benchmark in `--quick` smoke mode.
const QUICK_SAMPLES: usize = 2;

/// Whether the bench binary was invoked in smoke mode: `--quick` on the command line (the
/// flag real criterion uses) or `CRITERION_QUICK=1` in the environment (for harnesses that
/// cannot forward CLI arguments).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
}

/// Top-level benchmark driver, one per `criterion_group!`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real criterion defaults to 100 samples; the shim keeps runs short.
        Criterion {
            sample_size: 20,
            quick: quick_mode(),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark. In `--quick` mode the effective
    /// size is clamped to the smoke-mode sample count regardless of this setting.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self, configured: usize) -> usize {
        if self.quick {
            configured.min(QUICK_SAMPLES)
        } else {
            configured
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            quick: self.quick,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.effective_samples(self.sample_size), f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group (clamped in `--quick`
    /// mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.quick {
            self.sample_size.min(QUICK_SAMPLES)
        } else {
            self.sample_size
        }
    }

    /// Sets the target measurement time. Accepted for API compatibility; the shim sizes work
    /// by sample count only.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets throughput reporting. Accepted for API compatibility; the shim reports time only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.effective_samples(),
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` under a plain name within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.effective_samples(),
            f,
        );
        self
    }

    /// Finishes the group (a no-op in the shim; output is printed as benchmarks run).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// How `iter_batched` amortizes setup cost. The shim re-runs setup per sample regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Throughput declaration. Accepted for API compatibility only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to every benchmark closure; records one timed sample per `iter` call round.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Times `rounds` executions of `f` (one warmup first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.rounds {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `rounds` executions of `routine` on fresh inputs from `setup`; only the routine
    /// is inside the timed window.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.rounds {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        rounds: sample_size,
    };
    f(&mut bencher);
    let samples = bencher.samples;
    if samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name}: min {} / mean {} / max {} ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function running the listed benchmark targets with a default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter("count"), &2u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 3);
    }

    #[test]
    fn quick_mode_clamps_sample_sizes() {
        let mut c = Criterion {
            sample_size: 20,
            quick: true,
        };
        assert_eq!(c.effective_samples(30), QUICK_SAMPLES);
        assert_eq!(c.effective_samples(1), 1);
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("quick");
            group.sample_size(50);
            group.bench_function("clamped", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // 1 warmup + QUICK_SAMPLES samples.
        assert_eq!(runs, 1 + QUICK_SAMPLES as u32);
    }

    #[test]
    fn duration_formatting_covers_magnitudes() {
        assert!(fmt_duration(Duration::from_nanos(5)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains(" s"));
    }
}
