//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A strategy producing `Vec`s whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "vec strategy requires a non-empty size range"
    );
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
