//! Vendored stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Implements the generate-and-check core of property testing for the API subset used by this
//! workspace: the [`Strategy`] trait over ranges / tuples / `collection::vec`, the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Failing cases report the inputs
//! that triggered the failure but are **not shrunk** (the real crate's minimization machinery
//! is out of scope for an offline shim); each test draws from a deterministic RNG seeded from
//! the test's name, so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::strategy::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::strategy::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let case = ($($crate::strategy::Strategy::generate(&$strategy, &mut rng),)*);
                // Render the inputs up front: the body may consume them by value.
                let inputs = ::std::format!("{case:#?}");
                let ($($arg,)*) = case;
                let outcome: ::std::result::Result<(), $crate::strategy::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::strategy::TestCaseError::Reject) => {
                        rejected += 1;
                        ::std::assert!(
                            rejected < 256 + 16 * config.cases,
                            "{}: too many prop_assume! rejections ({} accepted cases)",
                            stringify!($name),
                            accepted
                        );
                    }
                    ::std::result::Result::Err($crate::strategy::TestCaseError::Fail(message)) => {
                        ::std::panic!(
                            "property {} failed after {} passing case(s): {}\ninputs ({}):\n{}",
                            stringify!($name),
                            accepted,
                            message,
                            stringify!($($arg),*),
                            inputs
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the enclosing property when the condition is false (with an optional format message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::strategy::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the enclosing property when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        $crate::prop_assert!($left == $right, $($fmt)*)
    };
}

/// Discards the current case (without failing) when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::strategy::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..10, y in 0.25f64..0.75, z in 1usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..4).contains(&z));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0u32..100, 2..8usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_assume_work((a, b) in (0u32..50, 0u32..50)) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn nested_vecs_compose(vv in prop::collection::vec(prop::collection::vec(0u32..10, 1..4usize), 1..5usize)) {
            prop_assert!(!vv.is_empty());
            prop_assert!(vv.iter().all(|v| (1..4).contains(&v.len())));
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
