//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Error produced by one executed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's precondition (`prop_assume!`) did not hold; draw a fresh case.
    Reject,
    /// An assertion failed; abort the property with this message.
    Fail(String),
}

/// Runtime configuration of a property (`#![proptest_config(...)]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, strategies here are *generators only*: there is no value tree and
/// no shrinking. `generate` must be cheap and deterministic given the RNG state.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategies compose by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields clones of one value (`Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
