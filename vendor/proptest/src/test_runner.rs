//! The deterministic RNG driving every property.

use rand::SeedableRng;
use rand_pcg::Pcg64;

/// RNG handed to strategies. Seeded from the property's name (FNV-1a), so every run of the
/// same test binary replays the same cases; there is no environment-variable override.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: Pcg64,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: Pcg64::seed_from_u64(hash),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut Pcg64 {
        &mut self.rng
    }
}
