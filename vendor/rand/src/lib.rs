//! Vendored stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no network access, so the workspace ships a
//! minimal, dependency-free implementation of exactly the `rand 0.8` API subset its crates
//! use: [`RngCore`], [`Rng`] (`gen_range`, `gen_bool`), [`SeedableRng`]
//! (`from_seed`, `seed_from_u64`), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The integer `gen_range` uses the widening-multiply bounded-sample technique and the float
//! version the standard 53-bit mantissa construction, so the statistical quality matches what
//! the workspace's tests assume. Streams are **not** bit-compatible with the real `rand`
//! crate; all determinism guarantees in this repository are relative to these shims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core of every random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (a half-open or inclusive range of a primitive
    /// integer or float type).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a single uniform sample. Mirrors `rand::distributions::uniform::
/// SampleRange` for the primitive types the workspace draws from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` to the unit interval `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Multiply-shift bounded sampling: uniform in `[0, span)` without modulo bias worth noticing
/// for the span sizes used here.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64, exactly like the
    /// real `rand` crate's provided method (so distinct small seeds give unrelated streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Random sequence operations (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random element selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A deliberately weak generator: good enough to exercise the range plumbing.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0usize..=4);
            assert!(b <= 4);
            let c = rng.gen_range(-0.0f64..1.0);
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn gen_bool_handles_extremes() {
        let mut rng = Counter(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((700..1300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
