//! Vendored stand-in for the [`rand_pcg`](https://crates.io/crates/rand_pcg) crate.
//!
//! Implements the PCG-64 generator (XSL-RR output over a 128-bit LCG state), which is the
//! algorithm behind `rand_pcg::Pcg64`. Streams are deterministic per seed but not guaranteed
//! bit-compatible with the crates.io implementation; everything in this repository that relies
//! on reproducibility seeds through this shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Default multiplier of the 128-bit PCG LCG step.
const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// A PCG-64 generator: 128 bits of LCG state, 64-bit XSL-RR output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

impl Pcg64 {
    /// Creates a generator from an explicit state and stream selector.
    pub fn new(state: u128, stream: u128) -> Self {
        // The increment of a PCG stream must be odd.
        let increment = (stream << 1) | 1;
        let mut rng = Pcg64 {
            state: state.wrapping_add(increment),
            increment,
        };
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(MULTIPLIER)
            .wrapping_add(self.increment);
    }

    /// XSL-RR: xor the state halves, rotate by the top 6 state bits.
    #[inline]
    fn output(state: u128) -> u64 {
        let rotate = (state >> 122) as u32;
        let xored = ((state >> 64) as u64) ^ (state as u64);
        xored.rotate_right(rotate)
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        Self::output(self.state)
    }
}

impl SeedableRng for Pcg64 {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u8; 16];
        let mut stream = [0u8; 16];
        state.copy_from_slice(&seed[..16]);
        stream.copy_from_slice(&seed[16..]);
        Pcg64::new(u128::from_le_bytes(state), u128::from_le_bytes(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = Pcg64::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| (rng.next_u64() >> 11) as f64).sum::<f64>() / n as f64;
        let expected = (1u64 << 52) as f64; // midpoint of the 53-bit range
        assert!((mean / expected - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bits_are_balanced() {
        let mut rng = Pcg64::seed_from_u64(9);
        let ones: u32 = (0..10_000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (10_000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "one-bit fraction {frac}");
    }
}
