//! Vendored stand-in for the [`rayon`](https://crates.io/crates/rayon) crate, upgraded from a
//! sequential shim to a real work-distribution layer.
//!
//! Two layers coexist:
//!
//! * The [`prelude`] traits (`into_par_iter`, `par_iter`, `par_iter_mut`) remain **sequential**
//!   adapters onto the standard-library iterators. They exist so rayon-style call sites keep
//!   compiling; arbitrary adapter chains cannot be parallelized without the full rayon
//!   machinery, and code on a hot path should use the [`pool`] module instead.
//! * The [`pool`] module is an actual scoped thread pool with **chunked index-range
//!   scheduling**: a job over `0..len` is split into at most `workers` contiguous ranges, each
//!   range runs on its own scoped thread, and the per-chunk results are merged **in chunk
//!   order** once every thread has joined.
//!
//! # Determinism contract (ordered chunk reduction)
//!
//! Every `pool` entry point guarantees that its result is a *pure function of the inputs and
//! the closure* — never of the worker count, thread scheduling, or interleaving:
//!
//! 1. The index space `0..len` is split by [`pool::chunk_ranges`] into contiguous, disjoint,
//!    ascending ranges that exactly cover `0..len`.
//! 2. Each worker produces a result for its own chunk only, from the closure's output alone
//!    (closures must not mutate shared state; the API hands out `Fn`, not `FnMut`).
//! 3. Chunk results are concatenated / merged strictly in chunk order after all workers
//!    joined, so `map_index(len, w, f)` equals `(0..len).map(f).collect()` for **every** `w`.
//!
//! Consequently the SHP refinement pipeline produces bit-identical partitions for any worker
//! count — the property `tests/parallel_conformance.rs` locks in for the whole workspace.
//!
//! `workers <= 1`, empty inputs, and jobs too small to be worth a thread spawn take a purely
//! sequential fast path in the calling thread (no spawns at all).
//!
//! # Panic safety
//!
//! A panicking task never deadlocks the pool: scoped threads are always joined, and the first
//! chunk's panic (in chunk order) is resumed on the caller after every worker finished. The
//! pool holds no global state, so subsequent calls after a caught panic work normally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Entry-point traits, mirroring `rayon::prelude`.
///
/// These remain *sequential*: they exist for API compatibility at call sites whose adapter
/// chains do not matter for performance. Hot paths use the [`crate::pool`] primitives, which
/// distribute work over real threads with deterministic ordered reduction.
pub mod prelude {
    /// Conversion into a "parallel" (here: sequential) iterator by value.
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Consumes `self`, yielding an iterator over its items.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowing counterpart of [`IntoParallelIterator`] (`par_iter`).
    pub trait IntoParallelRefIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Iterates over shared references to the items.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Mutably borrowing counterpart of [`IntoParallelIterator`] (`par_iter_mut`).
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Iterates over mutable references to the items.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Item = <&'data mut C as IntoIterator>::Item;
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Number of hardware threads available to the process (what real rayon would size its global
/// pool to). Falls back to 1 when the platform cannot report it.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The scoped thread pool with chunked index-range scheduling and deterministic ordered
/// reduction. See the crate docs for the determinism contract.
pub mod pool {
    use std::ops::Range;

    /// Below this many items per prospective chunk a job is not worth a thread spawn; the
    /// worker count is reduced so every spawned thread has at least this much work (tiny jobs
    /// collapse to the sequential fast path). Results are unaffected — only scheduling is.
    const MIN_ITEMS_PER_WORKER: usize = 64;

    /// Splits `0..len` into at most `chunks` contiguous, disjoint, ascending ranges that
    /// exactly cover `0..len`. The first `len % chunks` ranges hold one extra item, so sizes
    /// differ by at most one. With `chunks == 0` (treated as 1), `len == 0` yields no ranges.
    pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
        if len == 0 {
            return Vec::new();
        }
        let chunks = chunks.clamp(1, len);
        let base = len / chunks;
        let extra = len % chunks;
        let mut ranges = Vec::with_capacity(chunks);
        let mut start = 0;
        for i in 0..chunks {
            let size = base + usize::from(i < extra);
            ranges.push(start..start + size);
            start += size;
        }
        debug_assert_eq!(start, len);
        ranges
    }

    /// Effective number of chunks for a job of `len` items at the requested worker count,
    /// after the [`MIN_ITEMS_PER_WORKER`] granularity guard.
    fn effective_chunks(len: usize, workers: usize) -> usize {
        workers.min(len.div_ceil(MIN_ITEMS_PER_WORKER)).max(1)
    }

    /// Runs `f` over each range of [`chunk_ranges`]`(len, workers)` and returns the per-chunk
    /// results **in chunk order**. Sequential fast path when a single chunk results
    /// (`workers <= 1`, tiny `len`, or `len == 0`); otherwise one scoped thread per chunk.
    ///
    /// # Panics
    /// If a task panics, all threads are still joined and the panic of the earliest chunk (in
    /// chunk order) is resumed on the caller — the pool never deadlocks.
    pub fn run_chunks<R, F>(len: usize, workers: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(len, effective_chunks(len, workers));
        if ranges.len() <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(move || f(range)))
                .collect();
            join_in_chunk_order(handles)
        })
    }

    /// Joins every handle before propagating any panic, collecting results in spawn (= chunk)
    /// order; the panic of the earliest failing chunk is resumed after all threads finished.
    /// This is the single panic-propagation protocol shared by every scheduler in this module.
    fn join_in_chunk_order<R>(handles: Vec<std::thread::ScopedJoinHandle<'_, R>>) -> Vec<R> {
        let mut results = Vec::with_capacity(handles.len());
        let mut first_panic = None;
        for handle in handles {
            match handle.join() {
                Ok(result) => results.push(result),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            };
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results
    }

    /// Ordered parallel map over the index space: equals `(0..len).map(f).collect()` for every
    /// worker count.
    pub fn map_index<T, F>(len: usize, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        concat(run_chunks(len, workers, |range| {
            range.map(&f).collect::<Vec<T>>()
        }))
    }

    /// Ordered parallel filter-map over the index space: equals
    /// `(0..len).filter_map(f).collect()` for every worker count.
    pub fn filter_map_index<T, F>(len: usize, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> Option<T> + Sync,
    {
        concat(run_chunks(len, workers, |range| {
            range.filter_map(&f).collect::<Vec<T>>()
        }))
    }

    /// Like [`map_index`], but hands `f` a **worker-local scratch**: each chunk calls
    /// `make_scratch` exactly once and reuses the value for all of its indices, so per-item
    /// state (buffers, dense tables) is allocated once per worker instead of once per item.
    ///
    /// The determinism contract is unchanged — `f` must leave the scratch in an
    /// item-independent state between calls (reset what it touched), in which case the result
    /// equals `map_index(len, workers, |i| f(&mut make_scratch(), i))` for every worker count.
    /// The scratch never crosses threads, so `S` does not need to be `Send`.
    pub fn map_index_with<S, T, MS, F>(len: usize, workers: usize, make_scratch: MS, f: F) -> Vec<T>
    where
        T: Send,
        MS: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        concat(run_chunks(len, workers, |range| {
            let mut scratch = make_scratch();
            range.map(|i| f(&mut scratch, i)).collect::<Vec<T>>()
        }))
    }

    /// Filter-map counterpart of [`map_index_with`]: one scratch per chunk, result equal to
    /// `(0..len).filter_map(|i| f(&mut scratch, i)).collect()` for every worker count.
    pub fn filter_map_index_with<S, T, MS, F>(
        len: usize,
        workers: usize,
        make_scratch: MS,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        MS: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> Option<T> + Sync,
    {
        concat(run_chunks(len, workers, |range| {
            let mut scratch = make_scratch();
            range.filter_map(|i| f(&mut scratch, i)).collect::<Vec<T>>()
        }))
    }

    /// Ordered parallel map over a slice; `f` receives the global index and the item.
    pub fn map_slice<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        map_index(items.len(), workers, |i| f(i, &items[i]))
    }

    /// Ordered parallel map consuming a `Vec`; `f` receives the global index and the owned
    /// item. Unlike [`map_index`] this schedules **one chunk per worker regardless of size**
    /// (no granularity guard): it is meant for coarse work units such as per-simulated-worker
    /// superstep compute, where even a length-2 job deserves two threads.
    pub fn map_vec<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let len = items.len();
        let ranges = chunk_ranges(len, workers.max(1));
        if ranges.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }
        // Split the Vec into per-chunk owned slices, preserving global indices.
        let mut rest = items;
        let mut parts = Vec::with_capacity(ranges.len());
        for range in ranges.iter().rev() {
            let tail = rest.split_off(range.start);
            parts.push((range.start, tail));
        }
        parts.reverse();
        let f = &f;
        concat(std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|(offset, chunk)| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .enumerate()
                            .map(|(i, x)| f(offset + i, x))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            join_in_chunk_order(handles)
        }))
    }

    /// Runs `f` over **disjoint consecutive mutable parts** of `data`, one scoped thread per
    /// part: part `i` is the slice holding the next `part_sizes[i]` items, and `f` receives
    /// `(i, &mut part)`. The split is produced with `split_at_mut`, so the parts provably
    /// alias nothing — this is the safe primitive behind the parallel CSR scatter in
    /// `shp-hypergraph`'s graph builder, where each worker owns the output rows of its data
    /// range.
    ///
    /// Determinism contract: `f` mutates only its own part (plus any `Sync` shared reads), so
    /// the final contents of `data` are a pure function of the inputs and `f`, independent of
    /// scheduling. Zero-sized parts are passed through as empty slices. With at most one
    /// non-empty part (or one part total) `f` runs sequentially on the caller.
    ///
    /// # Panics
    /// Panics if `part_sizes` does not sum to exactly `data.len()`. A panicking task follows
    /// the same protocol as every other scheduler here: all threads are joined, then the
    /// panic of the earliest part (in part order) is resumed on the caller.
    pub fn for_each_part_mut<T, F>(data: &mut [T], part_sizes: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let total: usize = part_sizes.iter().sum();
        assert_eq!(
            total,
            data.len(),
            "part sizes must cover the slice exactly (sum {total}, len {})",
            data.len()
        );
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(part_sizes.len());
        let mut rest = data;
        for (i, &size) in part_sizes.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(size);
            parts.push((i, head));
            rest = tail;
        }
        if part_sizes.iter().filter(|&&size| size > 0).count() <= 1 {
            for (i, part) in parts {
                f(i, part);
            }
            return;
        }
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|(i, part)| scope.spawn(move || f(i, part)))
                .collect();
            join_in_chunk_order(handles);
        });
    }

    fn concat<T>(chunks: Vec<Vec<T>>) -> Vec<T> {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::pool;
    use super::prelude::*;

    #[test]
    fn entry_points_behave_like_std_iterators() {
        let doubled: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);

        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);

        let mut w = vec![1, 2, 3];
        w.par_iter_mut()
            .zip(vec![10, 20, 30].into_par_iter())
            .for_each(|(a, b)| *a += b);
        assert_eq!(w, vec![11, 22, 33]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_without_overlap() {
        for len in [0usize, 1, 2, 7, 64, 1000, 1001] {
            for chunks in [1usize, 2, 3, 8, 1000, 5000] {
                let ranges = pool::chunk_ranges(len, chunks);
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start, "len={len} chunks={chunks}");
                    assert!(!r.is_empty(), "len={len} chunks={chunks}");
                    expected_start = r.end;
                }
                assert_eq!(expected_start, len, "len={len} chunks={chunks}");
                assert!(ranges.len() <= chunks.max(1));
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let ranges = pool::chunk_ranges(1003, 8);
        let sizes: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn map_index_is_identical_for_every_worker_count() {
        let baseline: Vec<u64> = (0..10_000u64).map(|i| i.wrapping_mul(2654435761)).collect();
        for workers in [1usize, 2, 3, 4, 8, 16] {
            let parallel =
                pool::map_index(10_000, workers, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(parallel, baseline, "workers={workers}");
        }
    }

    #[test]
    fn filter_map_index_preserves_order_across_workers() {
        let baseline: Vec<usize> = (0..5_000).filter(|i| i % 7 == 0).collect();
        for workers in [1usize, 2, 4, 8] {
            let parallel = pool::filter_map_index(5_000, workers, |i| (i % 7 == 0).then_some(i));
            assert_eq!(parallel, baseline, "workers={workers}");
        }
    }

    #[test]
    fn map_slice_and_map_vec_agree_with_sequential() {
        let items: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| i as u64 + u64::from(x))
            .collect();
        for workers in [1usize, 2, 5, 8] {
            assert_eq!(
                pool::map_slice(&items, workers, |i, &x| i as u64 + u64::from(x)),
                expected
            );
            assert_eq!(
                pool::map_vec(items.clone(), workers, |i, x| i as u64 + u64::from(x)),
                expected
            );
        }
    }

    #[test]
    fn scratch_variants_match_their_plain_counterparts_for_every_worker_count() {
        let baseline_map: Vec<u64> = (0..5_000u64).map(|i| i * 7 + 1).collect();
        let baseline_filter: Vec<usize> = (0..5_000).filter(|i| i % 11 == 0).collect();
        for workers in [1usize, 2, 4, 8] {
            let mapped = pool::map_index_with(
                5_000,
                workers,
                || vec![0u64; 4],
                |scratch, i| {
                    // Use and reset the scratch so reuse across items is exercised.
                    scratch[i % 4] = i as u64 * 7 + 1;
                    let out = scratch[i % 4];
                    scratch[i % 4] = 0;
                    out
                },
            );
            assert_eq!(mapped, baseline_map, "workers={workers}");
            let filtered = pool::filter_map_index_with(
                5_000,
                workers,
                || 0usize,
                |count, i| {
                    *count += 1;
                    (i % 11 == 0).then_some(i)
                },
            );
            assert_eq!(filtered, baseline_filter, "workers={workers}");
        }
    }

    #[test]
    fn scratch_is_created_once_per_chunk() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let creations = AtomicUsize::new(0);
        let _ = pool::map_index_with(
            10_000,
            4,
            || {
                creations.fetch_add(1, Ordering::SeqCst);
                0u8
            },
            |_, i| i,
        );
        let made = creations.load(Ordering::SeqCst);
        assert!(
            (1..=4).contains(&made),
            "scratch must be per-chunk, not per-item: {made} creations"
        );
    }

    #[test]
    fn map_vec_uses_no_granularity_guard() {
        // Two coarse items must land on two chunks even though 2 < MIN_ITEMS_PER_WORKER.
        let ids = pool::map_vec(vec![0u8, 1], 2, |i, _| (i, std::thread::current().id()));
        assert_eq!(ids.len(), 2);
        assert_eq!((ids[0].0, ids[1].0), (0, 1));
    }

    #[test]
    fn small_jobs_take_the_sequential_fast_path() {
        let caller = std::thread::current().id();
        let ids = pool::map_index(8, 8, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn panicking_task_propagates_without_deadlock_and_pool_survives() {
        for round in 0..3 {
            let caught = std::panic::catch_unwind(|| {
                pool::map_index(10_000, 4, |i| {
                    if i == 7_777 {
                        panic!("task failure in round {round}");
                    }
                    i
                })
            });
            assert!(caught.is_err(), "round {round} should panic");
            // The pool is stateless: the very next call must work.
            let ok = pool::map_index(10_000, 4, |i| i);
            assert_eq!(ok.len(), 10_000);
        }
    }

    #[test]
    fn for_each_part_mut_writes_every_part_exactly_once() {
        let mut data = vec![0u32; 1_000];
        let sizes = [0usize, 137, 0, 400, 463];
        pool::for_each_part_mut(&mut data, &sizes, |i, part| {
            for slot in part.iter_mut() {
                *slot = i as u32 + 1;
            }
        });
        let expected: Vec<u32> = std::iter::empty()
            .chain(std::iter::repeat_n(2u32, 137))
            .chain(std::iter::repeat_n(4u32, 400))
            .chain(std::iter::repeat_n(5u32, 463))
            .collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn for_each_part_mut_single_part_runs_on_the_caller() {
        let caller = std::thread::current().id();
        let mut data = vec![0u64; 16];
        pool::for_each_part_mut(&mut data, &[16], |_, part| {
            assert_eq!(std::thread::current().id(), caller);
            part[0] = 7;
        });
        assert_eq!(data[0], 7);

        // Same when only one part is non-empty: no thread spawns, every part still visited.
        let visited = std::sync::atomic::AtomicUsize::new(0);
        pool::for_each_part_mut(&mut data, &[0, 0, 16], |i, part| {
            assert_eq!(std::thread::current().id(), caller);
            assert_eq!(part.len(), if i == 2 { 16 } else { 0 });
            visited.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(visited.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "cover the slice exactly")]
    fn for_each_part_mut_rejects_uncovering_sizes() {
        let mut data = vec![0u8; 10];
        pool::for_each_part_mut(&mut data, &[3, 3], |_, _| {});
    }

    #[test]
    fn for_each_part_mut_propagates_earliest_panic_without_deadlock() {
        let mut data = vec![0u8; 300];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool::for_each_part_mut(&mut data, &[100, 100, 100], |i, _| {
                if i >= 1 {
                    panic!("part {i} failed");
                }
            });
        }));
        let payload = caught.expect_err("must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("part 1"), "{message:?}");
        // The scheduler is stateless: the next call must work.
        pool::for_each_part_mut(&mut data, &[150, 150], |_, part| {
            for slot in part.iter_mut() {
                *slot = 1;
            }
        });
        assert!(data.iter().all(|&b| b == 1));
    }

    #[test]
    fn run_chunks_returns_results_in_chunk_order() {
        let results = pool::run_chunks(4_096, 8, |range| range.start);
        let mut sorted = results.clone();
        sorted.sort_unstable();
        assert_eq!(results, sorted);
        assert_eq!(results[0], 0);
    }

    #[test]
    fn current_num_threads_reports_at_least_one() {
        assert!(super::current_num_threads() >= 1);
    }
}
