//! Vendored stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The shim maps rayon's parallel-iterator entry points (`into_par_iter`, `par_iter`,
//! `par_iter_mut`) onto the corresponding **sequential** standard-library iterators, so all
//! downstream adapter chains (`map`, `filter_map`, `zip`, `enumerate`, `collect`, ...) are the
//! plain [`Iterator`] methods and behave identically — minus the parallelism. Results are
//! therefore deterministic and ordered, which the workspace's refinement pipeline relies on;
//! code that needs real threads (e.g. `shp-serving`) uses `std::thread::scope` directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Entry-point traits, mirroring `rayon::prelude`.
pub mod prelude {
    /// Conversion into a "parallel" (here: sequential) iterator by value.
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Consumes `self`, yielding an iterator over its items.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowing counterpart of [`IntoParallelIterator`] (`par_iter`).
    pub trait IntoParallelRefIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Iterates over shared references to the items.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Mutably borrowing counterpart of [`IntoParallelIterator`] (`par_iter_mut`).
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// Concrete iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Iterates over mutable references to the items.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Item = <&'data mut C as IntoIterator>::Item;
        type Iter = <&'data mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Returns the number of threads rayon would use; the sequential shim always reports 1.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn entry_points_behave_like_std_iterators() {
        let doubled: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);

        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);

        let mut w = vec![1, 2, 3];
        w.par_iter_mut()
            .zip(vec![10, 20, 30].into_par_iter())
            .for_each(|(a, b)| *a += b);
        assert_eq!(w, vec![11, 22, 33]);
    }
}
