//! Vendored stand-in for the [`serde`](https://crates.io/crates/serde) framework.
//!
//! The workspace annotates its data types with `#[derive(Serialize, Deserialize)]` so that a
//! real serialization backend can be enabled once the build environment has registry access.
//! Offline, this shim provides:
//!
//! * the [`Serialize`] / [`Deserialize`] traits with primitive impls (enough for the
//!   `#[serde(with = "...")]` helper modules in the workspace, which serialize through `u64`),
//! * skeletal [`Serializer`] / [`Deserializer`] traits, and
//! * no-op derive macros re-exported from `serde_derive`.
//!
//! No data format ships with the shim; nothing in the repository serializes at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A value that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for primitive values (a tiny subset of serde's data model).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type of the sink.
    type Error;

    /// Writes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Writes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Writes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Writes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Writes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// A value that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Reads `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A source of primitive values (a tiny subset of serde's data model).
pub trait Deserializer<'de>: Sized {
    /// Error type of the source.
    type Error;

    /// Reads a `bool`.
    fn deserialize_bool(self) -> Result<bool, Self::Error>;
    /// Reads a `u64`.
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
    /// Reads an `i64`.
    fn deserialize_i64(self) -> Result<i64, Self::Error>;
    /// Reads an `f64`.
    fn deserialize_f64(self) -> Result<f64, Self::Error>;
    /// Reads a string.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

macro_rules! impl_primitive {
    ($($t:ty => $ser:ident / $de:ident as $conv:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self as $conv)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                Ok(deserializer.$de()? as $t)
            }
        }
    )*};
}

impl_primitive!(
    u8 => serialize_u64 / deserialize_u64 as u64,
    u16 => serialize_u64 / deserialize_u64 as u64,
    u32 => serialize_u64 / deserialize_u64 as u64,
    u64 => serialize_u64 / deserialize_u64 as u64,
    usize => serialize_u64 / deserialize_u64 as u64,
    i32 => serialize_i64 / deserialize_i64 as i64,
    i64 => serialize_i64 / deserialize_i64 as i64,
    f32 => serialize_f64 / deserialize_f64 as f64,
    f64 => serialize_f64 / deserialize_f64 as f64,
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_bool()
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A serializer that renders primitives to their display strings.
    struct ToDisplay;

    impl Serializer for ToDisplay {
        type Ok = String;
        type Error = ();

        fn serialize_bool(self, v: bool) -> Result<String, ()> {
            Ok(v.to_string())
        }

        fn serialize_u64(self, v: u64) -> Result<String, ()> {
            Ok(v.to_string())
        }

        fn serialize_i64(self, v: i64) -> Result<String, ()> {
            Ok(v.to_string())
        }

        fn serialize_f64(self, v: f64) -> Result<String, ()> {
            Ok(v.to_string())
        }

        fn serialize_str(self, v: &str) -> Result<String, ()> {
            Ok(v.to_string())
        }
    }

    #[test]
    fn primitives_route_through_the_data_model() {
        assert_eq!(7u32.serialize(ToDisplay), Ok("7".to_string()));
        assert_eq!(true.serialize(ToDisplay), Ok("true".to_string()));
        assert_eq!("hi".serialize(ToDisplay), Ok("hi".to_string()));
        assert_eq!(1.5f64.serialize(ToDisplay), Ok("1.5".to_string()));
    }

    #[derive(Serialize, Deserialize)]
    struct Derived {
        #[serde(with = "unused")]
        _field: u64,
    }

    #[test]
    fn no_op_derive_compiles_with_inert_attributes() {
        let _ = Derived { _field: 3 };
    }
}
