//! Vendored stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report/config structs so a future
//! serialization backend can be dropped in, but nothing in the repository serializes those
//! types at runtime. These derives therefore expand to nothing: they only exist so the
//! `#[derive(Serialize, Deserialize)]` and inert `#[serde(...)]` attributes compile offline.

use proc_macro::TokenStream;

/// No-op derive for `serde::Serialize`; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `serde::Deserialize`; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
